// The cost-based plan optimizer (core/optimizer.h): every rewrite must be
// a pure function of (plan shape, public sizes, public flags), keep the
// root Table output byte-identical to the unoptimized plan under every
// SortPolicy x sort_elision x shards setting, leave unrewritable plans
// pointer-identical, and surface its decisions through op_rewrites, the
// annotated ExplainPlan, and the cost-annotated ExplainPlanWithCosts.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bits.h"
#include "core/exec_context.h"
#include "core/optimizer.h"
#include "core/plan.h"
#include "obliv/ct.h"

namespace oblivdb {
namespace {

using core::EstimateRows;
using core::ExecContext;
using core::Executor;
using core::OptimizePlan;
using core::PlanOp;
using core::PlanPtr;
using core::PlanResult;

const obliv::SortPolicy kAllPolicies[] = {
    obliv::SortPolicy::kReference,   obliv::SortPolicy::kBlocked,
    obliv::SortPolicy::kParallel,    obliv::SortPolicy::kTagSort,
    obliv::SortPolicy::kParallelTag, obliv::SortPolicy::kAuto};

// Multi-group tables with keys in [0, key_range): joins have real groups,
// distincts have duplicates, and `variant` moves only payload contents —
// two variants share every public size (the same trace/decision class).
Table FactTable(const std::string& name, size_t n, uint64_t key_range,
                uint64_t variant) {
  Table t(name);
  uint64_t state = 0xfac7 + key_range;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t key = SplitMix64(state) % key_range;
    t.rows().push_back(Record{key, {1000 * variant + 3 * i, variant + i % 2}});
  }
  return t;
}

// Sorted unique keys [0, n): a declarable key-unique dimension table.
Table DimTable(const std::string& name, size_t n, uint64_t variant) {
  Table t(name);
  for (uint64_t k = 0; k < n; ++k) {
    t.rows().push_back(Record{k, {500 * variant + k, variant}});
  }
  return t;
}

PlanPtr KeyUniqueScan(Table t) {
  return core::Scan(std::move(t), core::OrderSpec::ByKey(/*key_unique=*/true));
}

uint64_t KeyBelow(const Record& r, uint64_t bound) {
  return ct::LeqMask(r.key + 1, bound);
}

// Executes `plan` optimized and unoptimized under `base` and expects
// byte-identical root tables.  PlanResult::join_rows / aggregate_rows are
// deliberately not compared: pushing a select below a root join changes
// which node is the root, so those side-channels legitimately move.
void ExpectByteEqual(const PlanPtr& plan, ExecContext base) {
  base.optimize = true;
  Executor opt(base);
  const PlanResult r_opt = opt.Execute(plan);
  base.optimize = false;
  Executor raw(base);
  const PlanResult r_raw = raw.Execute(plan);
  EXPECT_EQ(r_opt.table.rows(), r_raw.table.rows());
}

// ---------------------------------------------------------------------------
// EstimateRows: the size-propagation rules.

TEST(EstimateRowsTest, ShapeRules) {
  const PlanPtr fact = core::Scan(FactTable("f", 40, 8, 1));
  const PlanPtr dim = KeyUniqueScan(DimTable("d", 8, 1));
  EXPECT_EQ(EstimateRows(fact), 40u);
  EXPECT_EQ(EstimateRows(dim), 8u);
  // Select/distinct pass through; a key-unique side bounds the join by the
  // other side; both unique takes the min; neither takes the max.
  auto pred = [](const Record& r) { return KeyBelow(r, 4); };
  EXPECT_EQ(EstimateRows(core::Select(fact, pred, /*key_only=*/true)), 40u);
  EXPECT_EQ(EstimateRows(core::Distinct(fact)), 40u);
  EXPECT_EQ(EstimateRows(core::Join(fact, dim)), 40u);
  EXPECT_EQ(EstimateRows(core::Join(dim, dim)), 8u);
  EXPECT_EQ(EstimateRows(core::Join(fact, fact)), 40u);
  EXPECT_EQ(EstimateRows(core::SemiJoin(fact, dim)), 40u);
  EXPECT_EQ(EstimateRows(core::Aggregate(fact, dim)), 8u);
  EXPECT_EQ(EstimateRows(core::Union(fact, dim)), 48u);
}

// ---------------------------------------------------------------------------
// Pointer identity: plans with nothing to rewrite pass through untouched.

TEST(OptimizerTest, UnrewritablePlanIsPointerIdentical) {
  // Non-key-only select over a join (cannot push), distinct over a
  // non-key-unique input (cannot eliminate), 3-input multiway (no middle
  // pair to reorder): no rule fires anywhere.
  auto pred = [](const Record& r) { return KeyBelow(r, 5); };
  const PlanPtr plan = core::Select(
      core::Distinct(core::Join(core::Scan(FactTable("a", 24, 6, 1)),
                                core::Scan(FactTable("b", 18, 6, 2)))),
      pred, /*key_only=*/false);
  EXPECT_EQ(OptimizePlan(plan, {}), plan);

  const PlanPtr multiway3 = core::MultiwayJoin(
      {KeyUniqueScan(DimTable("d1", 8, 1)), KeyUniqueScan(DimTable("d2", 4, 1)),
       KeyUniqueScan(DimTable("d3", 6, 1))});
  EXPECT_EQ(OptimizePlan(multiway3, {}), multiway3);

  // Non-key-unique middles pin a 4-input multiway even when sizes are
  // skewed.
  const PlanPtr multiway4 = core::MultiwayJoin(
      {core::Scan(FactTable("m1", 30, 6, 1)), core::Scan(FactTable("m2", 20, 6, 2)),
       core::Scan(FactTable("m3", 10, 6, 3)), core::Scan(FactTable("m4", 25, 6, 4))});
  EXPECT_EQ(OptimizePlan(multiway4, {}), multiway4);

  // And the Executor reflects it: optimize off executes the plan itself.
  ExecContext off;
  off.optimize = false;
  Executor ex(off);
  (void)ex.Execute(plan);
  EXPECT_EQ(ex.executed_plan(), plan);
}

// ---------------------------------------------------------------------------
// R3: distinct simplification.

TEST(OptimizerTest, DistinctIdempotenceCollapses) {
  const PlanPtr plan =
      core::Distinct(core::Distinct(core::Scan(FactTable("t", 20, 5, 1))));
  const PlanPtr opt = OptimizePlan(plan, {});
  ASSERT_EQ(opt->op, PlanOp::kDistinct);
  EXPECT_EQ(opt->inputs[0]->op, PlanOp::kScan);
  EXPECT_GE(opt->rewrites, 1u);
  ExpectByteEqual(plan, {});
}

TEST(OptimizerTest, DistinctOverKeyUniqueCoveredInputEliminated) {
  // Aggregate output is key-unique and key-sorted: covers ByKeyData, so
  // the distinct is the identity and disappears.
  const PlanPtr plan =
      core::Distinct(core::Aggregate(core::Scan(FactTable("a", 24, 6, 1)),
                                     core::Scan(FactTable("b", 18, 6, 2))));
  const PlanPtr opt = OptimizePlan(plan, {});
  EXPECT_EQ(opt->op, PlanOp::kAggregate);
  EXPECT_GE(opt->rewrites, 1u);
  ExpectByteEqual(plan, {});
}

// ---------------------------------------------------------------------------
// R2: key-only select pushdown.

TEST(OptimizerTest, KeyOnlySelectPushesBelowJoin) {
  auto pred = [](const Record& r) { return KeyBelow(r, 4); };
  const PlanPtr plan = core::Select(
      core::Join(core::Scan(FactTable("a", 40, 8, 1)),
                 core::Scan(FactTable("b", 30, 8, 2))),
      pred, /*key_only=*/true);
  const PlanPtr opt = OptimizePlan(plan, {});
  // The select vanished into both join inputs.
  ASSERT_EQ(opt->op, PlanOp::kJoin);
  EXPECT_EQ(opt->inputs[0]->op, PlanOp::kSelect);
  EXPECT_EQ(opt->inputs[1]->op, PlanOp::kSelect);
  EXPECT_TRUE(opt->inputs[0]->key_only);
  EXPECT_GE(opt->rewrites, 1u);
  ExpectByteEqual(plan, {});
}

TEST(OptimizerTest, KeyOnlySelectPushesBelowEveryCommutingOperator) {
  auto pred = [](const Record& r) { return KeyBelow(r, 4); };
  const auto make_a = [] { return core::Scan(FactTable("a", 32, 8, 1)); };
  const auto make_b = [] { return core::Scan(FactTable("b", 24, 8, 2)); };
  const std::vector<PlanPtr> children = {
      core::Join(make_a(), make_b()),
      core::SemiJoin(make_a(), make_b()),
      core::AntiJoin(make_a(), make_b()),
      core::Aggregate(make_a(), make_b()),
      core::Union(make_a(), make_b()),
      core::Distinct(make_a()),
      core::MultiwayJoin({make_a(), make_b(), make_a()}),
  };
  for (const PlanPtr& child : children) {
    const PlanPtr plan = core::Select(child, pred, /*key_only=*/true);
    const PlanPtr opt = OptimizePlan(plan, {});
    EXPECT_EQ(opt->op, child->op) << core::ExplainPlan(plan);
    ExpectByteEqual(plan, {});
  }
}

TEST(OptimizerTest, SelectSinksThroughStackedOperators) {
  // Select over a join of a distinct and a union: the pushed copies keep
  // sinking below their new children.
  auto pred = [](const Record& r) { return KeyBelow(r, 5); };
  const PlanPtr plan = core::Select(
      core::Join(core::Distinct(core::Scan(FactTable("a", 28, 7, 1))),
                 core::Union(core::Scan(FactTable("b", 20, 7, 2)),
                             core::Scan(FactTable("c", 12, 7, 3)))),
      pred, /*key_only=*/true);
  const PlanPtr opt = OptimizePlan(plan, {});
  ASSERT_EQ(opt->op, PlanOp::kJoin);
  // Left: distinct with the select inside; right: union with the select
  // inside both branches.
  ASSERT_EQ(opt->inputs[0]->op, PlanOp::kDistinct);
  EXPECT_EQ(opt->inputs[0]->inputs[0]->op, PlanOp::kSelect);
  ASSERT_EQ(opt->inputs[1]->op, PlanOp::kUnion);
  EXPECT_EQ(opt->inputs[1]->inputs[0]->op, PlanOp::kSelect);
  EXPECT_EQ(opt->inputs[1]->inputs[1]->op, PlanOp::kSelect);
  ExpectByteEqual(plan, {});
}

// ---------------------------------------------------------------------------
// R1: multiway middle reordering.

PlanPtr SkewedMultiway(uint64_t variant) {
  // First and last pinned (they contribute the packed payload words); the
  // key-unique middles arrive big-before-small, exactly backwards.
  return core::MultiwayJoin({
      core::Scan(FactTable("factA", 48, 12, variant)),
      KeyUniqueScan(DimTable("dimBig", 40, variant)),
      KeyUniqueScan(DimTable("dimSmall", 12, variant)),
      core::Scan(FactTable("factB", 32, 12, variant + 10)),
  });
}

TEST(OptimizerTest, MultiwayMiddlesReorderedByEstimatedRows) {
  const PlanPtr plan = SkewedMultiway(1);
  const PlanPtr opt = OptimizePlan(plan, {});
  ASSERT_EQ(opt->op, PlanOp::kMultiwayJoin);
  ASSERT_EQ(opt->inputs.size(), 4u);
  EXPECT_EQ(opt->inputs[0]->label, "factA");
  EXPECT_EQ(opt->inputs[1]->label, "dimSmall");  // moved ahead of dimBig
  EXPECT_EQ(opt->inputs[2]->label, "dimBig");
  EXPECT_EQ(opt->inputs[3]->label, "factB");
  EXPECT_GE(opt->rewrites, 1u);
  ExpectByteEqual(plan, {});
}

// ---------------------------------------------------------------------------
// Determinism: the chosen plan is a function of public sizes only.

TEST(OptimizerTest, ChosenPlanIdenticalAcrossDataOfSameSizes) {
  // Same table names and sizes, different contents (variant moves payloads
  // and the fact keys' pseudo-random draw): the optimizer must emit the
  // same tree, rendered identically.
  const std::string a = core::ExplainPlan(OptimizePlan(SkewedMultiway(1), {}));
  const std::string b = core::ExplainPlan(OptimizePlan(SkewedMultiway(2), {}));
  EXPECT_EQ(a, b);

  auto pred = [](const Record& r) { return KeyBelow(r, 4); };
  auto pushdown = [&](uint64_t variant) {
    return core::Select(core::Join(core::Scan(FactTable("a", 40, 8, variant)),
                                   core::Scan(FactTable("b", 30, 8, variant))),
                        pred, /*key_only=*/true);
  };
  EXPECT_EQ(core::ExplainPlan(OptimizePlan(pushdown(1), {})),
            core::ExplainPlan(OptimizePlan(pushdown(2), {})));
}

// ---------------------------------------------------------------------------
// Byte-equality across the whole public-knob grid.

TEST(OptimizerTest, ByteIdenticalAcrossPoliciesElisionAndShards) {
  auto pred = [](const Record& r) { return KeyBelow(r, 5); };
  const std::vector<PlanPtr> shapes = {
      SkewedMultiway(3),
      core::Select(core::Join(core::Scan(FactTable("a", 40, 8, 1)),
                              core::Scan(FactTable("b", 30, 8, 2))),
                   pred, /*key_only=*/true),
      core::Select(core::Aggregate(core::Scan(FactTable("a", 40, 8, 1)),
                                   core::Scan(FactTable("b", 30, 8, 2))),
                   pred, /*key_only=*/true),
      core::Distinct(core::Distinct(core::Scan(FactTable("t", 26, 6, 1)))),
      core::Distinct(core::Aggregate(core::Scan(FactTable("a", 24, 6, 1)),
                                     core::Scan(FactTable("b", 18, 6, 2)))),
  };
  for (const PlanPtr& plan : shapes) {
    for (const obliv::SortPolicy policy : kAllPolicies) {
      for (const bool elision : {false, true}) {
        for (const uint32_t shards : {1u, 4u}) {
          ExecContext ctx;
          ctx.sort_policy = policy;
          ctx.sort_elision = elision;
          ctx.shards = shards;
          ExpectByteEqual(plan, ctx);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Telemetry: op_rewrites, the annotated explain, the cost column.

TEST(OptimizerTest, RewritesSurfaceInStatsAndAnnotatedExplain) {
  const PlanPtr plan = SkewedMultiway(1);
  ExecContext ctx;
  ctx.optimize = true;
  Executor ex(ctx);
  (void)ex.Execute(plan);
  EXPECT_NE(ex.executed_plan(), plan);
  uint64_t total_rewrites = 0;
  for (const core::PlanNodeStats& s : ex.node_stats()) {
    total_rewrites += s.stats.op_rewrites;
  }
  EXPECT_GE(total_rewrites, 1u);
  // The annotated explain renders against the executed tree.
  const std::string annotated =
      core::ExplainPlan(ex.executed_plan(), ex.node_stats());
  EXPECT_NE(annotated.find("rewrites="), std::string::npos);
}

TEST(OptimizerTest, ExplainPlanWithCostsRendersEstimatesAndCosts) {
  const PlanPtr plan = SkewedMultiway(1);
  const std::string before = core::ExplainPlanWithCosts(plan, /*workers=*/1);
  EXPECT_NE(before.find("est_rows="), std::string::npos);
  EXPECT_NE(before.find("cost="), std::string::npos);
  EXPECT_NE(before.find("scan(dimSmall)"), std::string::npos);
  // Deterministic rendering (same plan, same workers).
  EXPECT_EQ(before, core::ExplainPlanWithCosts(plan, /*workers=*/1));
}

}  // namespace
}  // namespace oblivdb
