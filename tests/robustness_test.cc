// Failure-injection and contract-enforcement tests: the library aborts
// loudly on broken preconditions instead of silently de-obliviating.

#include <gtest/gtest.h>

#include "core/join.h"
#include "memtrace/oarray.h"
#include "memtrace/sinks.h"
#include "obliv/bitonic_sort.h"
#include "obliv/ct.h"
#include "obliv/expand.h"
#include "sgx_sim/epc_simulator.h"
#include "table/entry.h"
#include "workload/generators.h"

namespace oblivdb {
namespace {

struct Pod {
  uint64_t v = 0;
};

TEST(OArrayDeathTest, ReadOutOfBoundsAborts) {
  memtrace::OArray<Pod> arr(4, "b");
  EXPECT_DEATH((void)arr.Read(4), "OBLIVDB_CHECK");
}

TEST(OArrayDeathTest, WriteOutOfBoundsAborts) {
  memtrace::OArray<Pod> arr(4, "b");
  EXPECT_DEATH(arr.Write(100, Pod{}), "OBLIVDB_CHECK");
}

TEST(OArrayDeathTest, EmptyArrayAnyAccessAborts) {
  memtrace::OArray<Pod> arr(0, "b");
  EXPECT_DEATH((void)arr.Read(0), "OBLIVDB_CHECK");
}

struct Item {
  uint64_t key = 0;
  uint64_t dest = 0;
};
uint64_t GetRouteDest(const Item& e) { return e.dest; }
void SetRouteDest(Item& e, uint64_t d) { e.dest = d; }

TEST(ContractDeathTest, SortRangeBeyondArrayAborts) {
  memtrace::OArray<Item> arr(4, "b");
  struct Less {
    uint64_t operator()(const Item& a, const Item& b) const {
      return ct::LessMask(a.key, b.key);
    }
  };
  EXPECT_DEATH(obliv::BitonicSortRange(arr, 2, 3, Less{}), "OBLIVDB_CHECK");
}

TEST(ContractDeathTest, UndersizedExpandOutputAborts) {
  memtrace::OArray<Item> input(2, "in");
  input.Write(0, Item{1, 0});
  input.Write(1, Item{2, 0});
  struct Count {
    uint64_t operator()(const Item&) const { return 5; }
  };
  const uint64_t m = obliv::AssignExpandDestinations(input, Count{});
  EXPECT_EQ(m, 10u);
  memtrace::OArray<Item> too_small(4, "out");
  EXPECT_DEATH(obliv::ExpandToDestinations(input, too_small, m),
               "OBLIVDB_CHECK");
}

TEST(ContractDeathTest, WorkloadInfeasibleOutputSizeAborts) {
  // WithOutputSize requires target_m <= floor(n/2).
  EXPECT_DEATH((void)workload::WithOutputSize(8, 5, 0, 1), "OBLIVDB_CHECK");
}

// ---------------------------------------------------------------------------
// Determinism / idempotence under repetition (no hidden global state).

TEST(RobustnessTest, JoinIsPure) {
  const auto tc = workload::PowerLaw(32, 2.0, 4);
  const auto first = core::ObliviousJoin(tc.t1, tc.t2);
  const auto second = core::ObliviousJoin(tc.t1, tc.t2);
  EXPECT_EQ(first, second);
}

TEST(RobustnessTest, InterleavedTracedAndUntracedRunsAgree) {
  const auto tc = workload::PowerLaw(24, 2.0, 5);
  const auto plain = core::ObliviousJoin(tc.t1, tc.t2);
  memtrace::HashTraceSink sink;
  std::vector<JoinedRecord> traced;
  {
    memtrace::TraceScope scope(&sink);
    traced = core::ObliviousJoin(tc.t1, tc.t2);
  }
  EXPECT_EQ(plain, traced);
  EXPECT_EQ(core::ObliviousJoin(tc.t1, tc.t2), plain);
}

TEST(RobustnessTest, ExtremeKeyAndPayloadValues) {
  // Max-value keys/payloads stress the branch-free comparisons (borrow /
  // carry edge cases) through the whole pipeline.
  const uint64_t maxv = ~uint64_t{0};
  Table t1("a"), t2("b");
  t1.Add(maxv, maxv, maxv);
  t1.Add(maxv, maxv - 1, 0);
  t1.Add(0, 0, 0);
  t2.Add(maxv, maxv, 1);
  t2.Add(0, maxv, maxv);
  t2.Add(maxv - 1, 3, 3);
  const auto rows = core::ObliviousJoin(t1, t2);
  ASSERT_EQ(rows.size(), 3u);  // two maxv pairs + one zero pair
  EXPECT_EQ(rows[0].key, 0u);
  EXPECT_EQ(rows[1].key, maxv);
  EXPECT_EQ(rows[2].key, maxv);
}

TEST(RobustnessTest, EpcSimulatorLruEvictsColdestPage) {
  sgx_sim::SgxCostModel model;
  model.epc_bytes = 2 * 4096;  // two resident pages
  sgx_sim::EpcSimulator sim(model);
  memtrace::TraceScope scope(&sim);
  struct Page {
    uint8_t bytes[4096];
  };
  memtrace::OArray<Page> arr(3, "pages");
  (void)arr.Read(0);  // fault 1
  (void)arr.Read(1);  // fault 2
  (void)arr.Read(0);  // hit, refreshes page 0
  (void)arr.Read(2);  // fault 3, evicts page 1 (coldest)
  EXPECT_EQ(sim.page_faults(), 3u);
  (void)arr.Read(0);  // still resident -> no fault
  EXPECT_EQ(sim.page_faults(), 3u);
  (void)arr.Read(1);  // was evicted -> fault 4
  EXPECT_EQ(sim.page_faults(), 4u);
}

}  // namespace
}  // namespace oblivdb
