// Failure-injection and contract-enforcement tests: the library aborts
// loudly on broken preconditions instead of silently de-obliviating.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/fault.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/comparators.h"
#include "core/join.h"
#include "core/plan.h"
#include "core/shard.h"
#include "memtrace/encrypted_oarray.h"
#include "memtrace/oarray.h"
#include "memtrace/sinks.h"
#include "obliv/bitonic_sort.h"
#include "obliv/ct.h"
#include "obliv/expand.h"
#include "sgx_sim/epc_simulator.h"
#include "table/entry.h"
#include "typecheck/interpreter.h"
#include "workload/generators.h"

namespace oblivdb {
namespace {

struct Pod {
  uint64_t v = 0;
};

TEST(OArrayDeathTest, ReadOutOfBoundsAborts) {
  memtrace::OArray<Pod> arr(4, "b");
  EXPECT_DEATH((void)arr.Read(4), "OBLIVDB_CHECK");
}

TEST(OArrayDeathTest, WriteOutOfBoundsAborts) {
  memtrace::OArray<Pod> arr(4, "b");
  EXPECT_DEATH(arr.Write(100, Pod{}), "OBLIVDB_CHECK");
}

TEST(OArrayDeathTest, EmptyArrayAnyAccessAborts) {
  memtrace::OArray<Pod> arr(0, "b");
  EXPECT_DEATH((void)arr.Read(0), "OBLIVDB_CHECK");
}

struct Item {
  uint64_t key = 0;
  uint64_t dest = 0;
};
uint64_t GetRouteDest(const Item& e) { return e.dest; }
void SetRouteDest(Item& e, uint64_t d) { e.dest = d; }

TEST(ContractDeathTest, SortRangeBeyondArrayAborts) {
  memtrace::OArray<Item> arr(4, "b");
  struct Less {
    uint64_t operator()(const Item& a, const Item& b) const {
      return ct::LessMask(a.key, b.key);
    }
  };
  EXPECT_DEATH(obliv::BitonicSortRange(arr, 2, 3, Less{}), "OBLIVDB_CHECK");
}

TEST(ContractDeathTest, UndersizedExpandOutputAborts) {
  memtrace::OArray<Item> input(2, "in");
  input.Write(0, Item{1, 0});
  input.Write(1, Item{2, 0});
  struct Count {
    uint64_t operator()(const Item&) const { return 5; }
  };
  const uint64_t m = obliv::AssignExpandDestinations(input, Count{});
  EXPECT_EQ(m, 10u);
  memtrace::OArray<Item> too_small(4, "out");
  EXPECT_DEATH(obliv::ExpandToDestinations(input, too_small, m),
               "OBLIVDB_CHECK");
}

TEST(ContractDeathTest, WorkloadInfeasibleOutputSizeAborts) {
  // WithOutputSize requires target_m <= floor(n/2).
  EXPECT_DEATH((void)workload::WithOutputSize(8, 5, 0, 1), "OBLIVDB_CHECK");
}

// ---------------------------------------------------------------------------
// Determinism / idempotence under repetition (no hidden global state).

TEST(RobustnessTest, JoinIsPure) {
  const auto tc = workload::PowerLaw(32, 2.0, 4);
  const auto first = core::ObliviousJoin(tc.t1, tc.t2);
  const auto second = core::ObliviousJoin(tc.t1, tc.t2);
  EXPECT_EQ(first, second);
}

TEST(RobustnessTest, InterleavedTracedAndUntracedRunsAgree) {
  const auto tc = workload::PowerLaw(24, 2.0, 5);
  const auto plain = core::ObliviousJoin(tc.t1, tc.t2);
  memtrace::HashTraceSink sink;
  std::vector<JoinedRecord> traced;
  {
    memtrace::TraceScope scope(&sink);
    traced = core::ObliviousJoin(tc.t1, tc.t2);
  }
  EXPECT_EQ(plain, traced);
  EXPECT_EQ(core::ObliviousJoin(tc.t1, tc.t2), plain);
}

TEST(RobustnessTest, ExtremeKeyAndPayloadValues) {
  // Max-value keys/payloads stress the branch-free comparisons (borrow /
  // carry edge cases) through the whole pipeline.
  const uint64_t maxv = ~uint64_t{0};
  Table t1("a"), t2("b");
  t1.Add(maxv, maxv, maxv);
  t1.Add(maxv, maxv - 1, 0);
  t1.Add(0, 0, 0);
  t2.Add(maxv, maxv, 1);
  t2.Add(0, maxv, maxv);
  t2.Add(maxv - 1, 3, 3);
  const auto rows = core::ObliviousJoin(t1, t2);
  ASSERT_EQ(rows.size(), 3u);  // two maxv pairs + one zero pair
  EXPECT_EQ(rows[0].key, 0u);
  EXPECT_EQ(rows[1].key, maxv);
  EXPECT_EQ(rows[2].key, maxv);
}

TEST(RobustnessTest, EpcSimulatorLruEvictsColdestPage) {
  sgx_sim::SgxCostModel model;
  model.epc_bytes = 2 * 4096;  // two resident pages
  sgx_sim::EpcSimulator sim(model);
  memtrace::TraceScope scope(&sim);
  struct Page {
    uint8_t bytes[4096];
  };
  memtrace::OArray<Page> arr(3, "pages");
  (void)arr.Read(0);  // fault 1
  (void)arr.Read(1);  // fault 2
  (void)arr.Read(0);  // hit, refreshes page 0
  (void)arr.Read(2);  // fault 3, evicts page 1 (coldest)
  EXPECT_EQ(sim.page_faults(), 3u);
  (void)arr.Read(0);  // still resident -> no fault
  EXPECT_EQ(sim.page_faults(), 3u);
  (void)arr.Read(1);  // was evicted -> fault 4
  EXPECT_EQ(sim.page_faults(), 4u);
}

// ---------------------------------------------------------------------------
// Fault injection, site by site (common/fault.h).

struct EncCell {
  uint64_t a = 0;
  uint64_t b = 0;
  friend bool operator==(const EncCell&, const EncCell&) = default;
};

TEST(FaultSiteTest, TransientMacFaultRetriesAndRecovers) {
  ScopedFaultInjection scoped("decrypt_mac:once");
  memtrace::EncryptedOArray<EncCell> arr(2, /*key=*/7);
  arr.Write(0, EncCell{11, 22});
  // The first decryption arrival fires; the retry's re-derived arrival does
  // not, so the read succeeds and the fault stays invisible to the caller.
  const EncCell got = arr.Read(0);
  EXPECT_EQ(got, (EncCell{11, 22}));
  const FaultCounters counters = FaultInjector::Global().Snapshot();
  EXPECT_EQ(counters.fired[0], 1u);
  EXPECT_EQ(counters.retries, 1u);
}

TEST(FaultSiteTest, TransientMacFaultPreservesValuesAndTrace) {
  auto run = [](const char* spec) {
    memtrace::VectorTraceSink sink;
    std::vector<EncCell> values;
    {
      ScopedFaultInjection scoped(spec, /*seed=*/5);
      // Constructed inside the scope so the array id comes from the
      // scope-reset counter and the two runs' events are comparable.
      memtrace::TraceScope scope(&sink);
      memtrace::EncryptedOArray<EncCell> arr(8, /*key=*/3, "enc_faulty");
      for (size_t i = 0; i < 8; ++i) {
        arr.Write(i, EncCell{i, 100 + i});
      }
      for (size_t i = 0; i < 8; ++i) values.push_back(arr.Read(i));
    }
    return std::make_pair(std::move(values), sink.events());
  };
  // 20% per-attempt failures are absorbed by the retry budget: the values
  // and the adversary-visible access sequence are byte-identical to the
  // fault-free run (retries re-touch already-fetched ciphertexts).
  const auto clean = run("");
  const auto faulty = run("decrypt_mac:0.2");
  EXPECT_EQ(clean.first, faulty.first);
  EXPECT_EQ(clean.second.size(), faulty.second.size());
  for (size_t i = 0; i < clean.second.size(); ++i) {
    EXPECT_EQ(clean.second[i], faulty.second[i]) << "event " << i;
  }
}

TEST(FaultSiteTest, PersistentCorruptionTryReadReturnsIntegrityViolation) {
  memtrace::EncryptedOArray<EncCell> arr(4, /*key=*/9, "tampered");
  arr.Write(2, EncCell{1, 2});
  arr.MutableCiphertextAt(2).bytes[0] ^= 0x80;  // single bit flip
  const StatusOr<EncCell> r = arr.TryRead(2);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIntegrityViolation);
  EXPECT_NE(r.status().message().find("cell 2"), std::string::npos);
  EXPECT_NE(r.status().message().find("tampered"), std::string::npos);
  // The untampered neighbour still authenticates.
  EXPECT_TRUE(arr.TryRead(1).ok());
}

TEST(FaultSiteDeathTest, PersistentCorruptionLegacyReadAborts) {
  memtrace::EncryptedOArray<EncCell> arr(4, /*key=*/9);
  arr.Write(1, EncCell{1, 2});
  arr.MutableCiphertextAt(1).bytes[5] ^= 0x01;
  EXPECT_DEATH((void)arr.Read(1),
               "OBLIVDB fault \\(no recovery scope\\).*INTEGRITY_VIOLATION");
}

TEST(FaultSiteTest, CorruptionUnderRecoveryScopeUnwindsToStatus) {
  memtrace::EncryptedOArray<EncCell> arr(4, /*key=*/9);
  arr.Write(1, EncCell{1, 2});
  arr.MutableCiphertextAt(1).bytes[5] ^= 0x01;
  core::ExecContext ctx;
  const StatusOr<EncCell> r =
      core::RunRecoverable(ctx, [&] { return arr.Read(1); });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIntegrityViolation);
}

TEST(FaultSiteDeathTest, AllocFaultAbortsWithoutRecoveryScope) {
  ScopedFaultInjection scoped("alloc:once");
  EXPECT_DEATH({ memtrace::OArray<Pod> victim(4, "victim"); },
               "RESOURCE_EXHAUSTED: injected allocation failure");
}

TEST(FaultSiteTest, AllocFaultReturnsResourceExhaustedUnderScope) {
  ScopedFaultInjection scoped("alloc:once");
  core::ExecContext ctx;
  const StatusOr<uint64_t> r = core::RunRecoverable(ctx, [] {
    memtrace::OArray<Pod> victim(4, "victim");
    return victim.Read(0).v;
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("victim"), std::string::npos);
  // The injector is one-shot: the next allocation succeeds.
  const StatusOr<uint64_t> again = core::RunRecoverable(ctx, [] {
    memtrace::OArray<Pod> fine(4, "fine");
    return fine.Read(0).v;
  });
  EXPECT_TRUE(again.ok());
}

TEST(FaultSiteTest, PoolSpawnFaultDegradesParallelTagToTagSort) {
  const auto tc = workload::PowerLaw(64, 2.0, 7);
  core::JoinStats clean_stats;
  core::ExecContext clean_ctx;
  clean_ctx.sort_policy = obliv::SortPolicy::kParallelTag;
  clean_ctx.stats = &clean_stats;
  std::vector<JoinedRecord> clean;
  {
    // Pin injection off so an ambient OBLIVDB_FAULT_SPEC (smoke pass 5)
    // can't degrade the clean baseline.
    ScopedFaultInjection off("");
    clean = core::ObliviousJoin(tc.t1, tc.t2, clean_ctx);
  }

  core::JoinStats faulty_stats;
  core::ExecContext faulty_ctx = clean_ctx;
  faulty_ctx.stats = &faulty_stats;
  std::vector<JoinedRecord> faulty;
  {
    ScopedFaultInjection scoped("pool_spawn:1");  // every fan-out refused
    faulty = core::ObliviousJoin(tc.t1, tc.t2, faulty_ctx);
  }
  // Degradation preserves the output bytes (kParallelTag and kTagSort sort
  // to the same order with the same trace contract); the stats record both
  // the downgraded tier and the degradation count.
  EXPECT_EQ(clean, faulty);
  EXPECT_NE(faulty_stats.op_sort_policy_chosen,
            obliv::SortPolicy::kParallelTag);
  EXPECT_GT(faulty_stats.op_degradations, 0u);
  EXPECT_GT(faulty_stats.op_faults_injected, 0u);
  EXPECT_EQ(clean_stats.op_degradations, 0u);
}

TEST(FaultSiteTest, PoolSpawnFaultDowngradesSortTierInPlace) {
  auto fill = [](memtrace::OArray<Entry>& a) {
    for (size_t i = 0; i < a.size(); ++i) {
      a.Write(i, MakeEntry(Record{(i * 37) % 64, {i, i + 1}}, /*tid=*/1));
    }
  };
  memtrace::OArray<Entry> clean(64, "deg_clean");
  fill(clean);
  obliv::SortPolicy clean_chosen = obliv::SortPolicy::kAuto;
  obliv::SortRange(clean, 0, clean.size(), core::ByJoinKeyThenTidLess{},
                   obliv::SortPolicy::kParallelTag, nullptr, nullptr,
                   &clean_chosen);
  EXPECT_EQ(clean_chosen, obliv::SortPolicy::kParallelTag);

  memtrace::OArray<Entry> faulty(64, "deg_faulty");
  fill(faulty);
  obliv::SortPolicy faulty_chosen = obliv::SortPolicy::kAuto;
  {
    ScopedFaultInjection scoped("pool_spawn:once");
    obliv::SortRange(faulty, 0, faulty.size(), core::ByJoinKeyThenTidLess{},
                     obliv::SortPolicy::kParallelTag, nullptr, nullptr,
                     &faulty_chosen);
    EXPECT_EQ(FaultInjector::Global().Snapshot().degradations, 1u);
  }
  EXPECT_EQ(faulty_chosen, obliv::SortPolicy::kTagSort);
  for (size_t i = 0; i < clean.size(); ++i) {
    const Entry a = clean.Read(i);
    const Entry b = faulty.Read(i);
    EXPECT_EQ(a.join_key, b.join_key);
    EXPECT_EQ(a.payload0, b.payload0);
  }
}

TEST(FaultSiteTest, EpcFaultHalvesShardCount) {
  const auto tc = workload::OneToOne(256, 3);
  core::ExecContext ctx;
  ctx.shards = 4;
  core::JoinStats stats;
  ctx.stats = &stats;
  const auto unsharded = core::ObliviousJoin(tc.t1, tc.t2);
  std::vector<JoinedRecord> rows;
  {
    // First EPC reservation (k=4) refused, the retry at k=2 admitted.
    ScopedFaultInjection scoped("epc_evict:once");
    rows = core::ShardedJoin(tc.t1, tc.t2, ctx);
  }
  EXPECT_EQ(rows, unsharded);
  EXPECT_EQ(stats.op_shards, 2u);
  EXPECT_EQ(stats.op_degradations, 1u);
  EXPECT_GE(stats.op_faults_injected, 1u);
}

TEST(FaultSiteTest, EpcExhaustionDowngradesToUnsharded) {
  const auto tc = workload::OneToOne(256, 3);
  core::ExecContext ctx;
  ctx.shards = 4;
  core::JoinStats stats;
  ctx.stats = &stats;
  const auto unsharded = core::ObliviousJoin(tc.t1, tc.t2);
  std::vector<JoinedRecord> rows;
  {
    ScopedFaultInjection scoped("epc_evict:1");  // every reservation refused
    rows = core::ShardedJoin(tc.t1, tc.t2, ctx);
  }
  EXPECT_EQ(rows, unsharded);
  EXPECT_EQ(stats.op_shards, 1u);  // the unsharded fallback reported
  EXPECT_EQ(stats.op_degradations, 2u);  // 4 -> 2 -> 1
}

TEST(FaultSiteTest, EpcBudgetLimitDowngradesWithoutInjection) {
  const auto tc = workload::OneToOne(256, 3);
  core::ExecContext ctx;
  ctx.shards = 4;
  sgx_sim::SetEpcLimitBytes(1);  // no shard footprint fits one byte
  const uint32_t k = core::ResolveShardCount(tc.t1, tc.t2, ctx);
  sgx_sim::SetEpcLimitBytes(0);
  EXPECT_EQ(k, 1u);
}

TEST(FaultSiteTest, PoolSpawnFaultRunsShardPipelinesSequentially) {
  const auto tc = workload::OneToOne(256, 3);
  core::ExecContext ctx;
  ctx.shards = 2;
  const auto clean = core::ShardedJoin(tc.t1, tc.t2, ctx);
  core::JoinStats stats;
  ctx.stats = &stats;
  std::vector<JoinedRecord> faulty;
  {
    ScopedFaultInjection scoped("pool_spawn:1");
    faulty = core::ShardedJoin(tc.t1, tc.t2, ctx);
  }
  // The shard fan-out degrades to the sequential driver loop; outputs are
  // unchanged and the degradation is visible in the operator's window.
  EXPECT_EQ(clean, faulty);
  EXPECT_EQ(stats.op_shards, 2u);
  EXPECT_GT(stats.op_degradations, 0u);
}

TEST(FaultInjectorTest, InjectedFaultSequenceAndStatusAreDeterministic) {
  auto run = [] {
    ScopedFaultInjection scoped("decrypt_mac:0.9", /*seed=*/1234);
    memtrace::EncryptedOArray<EncCell> arr(4, /*key=*/3);
    core::ExecContext ctx;
    std::vector<StatusCode> codes;
    for (int i = 0; i < 8; ++i) {
      const StatusOr<EncCell> r = core::RunRecoverable(
          ctx, [&] { return arr.Read(static_cast<size_t>(i) % 4); });
      codes.push_back(r.ok() ? StatusCode::kOk : r.status().code());
    }
    auto counters = FaultInjector::Global().Snapshot();
    return std::make_pair(std::move(codes), counters.fired);
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
  // At 90% per-attempt failure some read must have exhausted its retries.
  bool any_fault = false;
  for (StatusCode c : first.first) {
    any_fault = any_fault || c == StatusCode::kIntegrityViolation;
  }
  EXPECT_TRUE(any_fault);
}

// ---------------------------------------------------------------------------
// Oblivious-safe cancellation and deadlines (common/cancel.h).

class RecordingCheckpointSink : public CheckpointSink {
 public:
  void OnCheckpoint(const char* phase, uint64_t seq) override {
    checkpoints_.emplace_back(phase, seq);
  }
  const std::vector<std::pair<std::string, uint64_t>>& checkpoints() const {
    return checkpoints_;
  }

 private:
  std::vector<std::pair<std::string, uint64_t>> checkpoints_;
};

// Cancels the token when the poll sequence reaches `cancel_at`.
class CancelAtCheckpointSink : public CheckpointSink {
 public:
  CancelAtCheckpointSink(CancelToken* token, uint64_t cancel_at)
      : token_(token), cancel_at_(cancel_at) {}
  void OnCheckpoint(const char*, uint64_t seq) override {
    last_seq_ = seq;
    if (seq == cancel_at_) token_->Cancel();
  }
  uint64_t last_seq() const { return last_seq_; }

 private:
  CancelToken* token_;
  uint64_t cancel_at_;
  uint64_t last_seq_ = 0;
};

TEST(CancellationTest, PreCancelledTokenReturnsCancelled) {
  const auto tc = workload::PowerLaw(32, 2.0, 4);
  CancelToken token;
  token.Cancel();
  core::ExecContext ctx;
  ctx.cancel_token = &token;
  const auto r = core::TryObliviousJoin(tc.t1, tc.t2, ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_NE(r.status().message().find("cancelled at checkpoint"),
            std::string::npos);
}

TEST(CancellationTest, PreCancelledTokenCancelsShardedJoin) {
  const auto tc = workload::OneToOne(256, 3);
  CancelToken token;
  token.Cancel();
  core::ExecContext ctx;
  ctx.shards = 2;
  ctx.cancel_token = &token;
  const auto r = core::TryShardedJoin(tc.t1, tc.t2, ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(CancellationTest, TinyDeadlineReturnsDeadlineExceeded) {
  const auto tc = workload::PowerLaw(32, 2.0, 4);
  core::ExecContext ctx;
  ctx.deadline_seconds = 1e-9;  // expired by the first checkpoint
  const auto r = core::TryObliviousJoin(tc.t1, tc.t2, ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(r.status().message().find("deadline exceeded at checkpoint"),
            std::string::npos);
}

TEST(CancellationTest, UnfiredTokenLeavesResultIdentical) {
  const auto tc = workload::PowerLaw(32, 2.0, 4);
  const auto legacy = core::ObliviousJoin(tc.t1, tc.t2);
  CancelToken token;  // never cancelled
  core::ExecContext ctx;
  ctx.cancel_token = &token;
  const auto r = core::TryObliviousJoin(tc.t1, tc.t2, ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), legacy);
}

TEST(CancellationTest, CheckpointSequenceIsSizeDetermined) {
  // Two datasets with identical public sizes (n1 = n2 = 64, m = 64 for
  // one-to-one workloads) but different contents: the checkpoint sequence —
  // phases and sequence numbers — and the memory trace must be identical.
  auto run = [](uint64_t seed, RecordingCheckpointSink* sink,
                memtrace::VectorTraceSink* trace) {
    const auto tc = workload::OneToOne(64, seed);
    core::ExecContext ctx;
    ctx.checkpoint_sink = sink;
    memtrace::TraceScope scope(trace);
    const auto r = core::TryObliviousJoin(tc.t1, tc.t2, ctx);
    ASSERT_TRUE(r.ok());
  };
  RecordingCheckpointSink sink_a, sink_b;
  memtrace::VectorTraceSink trace_a, trace_b;
  run(1, &sink_a, &trace_a);
  run(2, &sink_b, &trace_b);
  ASSERT_GT(sink_a.checkpoints().size(), 0u);
  EXPECT_EQ(sink_a.checkpoints(), sink_b.checkpoints());
  EXPECT_TRUE(trace_a.SameTraceAs(trace_b));
}

TEST(CancellationTest, CancelledRunIsTruncatedPrefixOfUncancelledRun) {
  const auto tc = workload::OneToOne(64, 5);

  // Full run: record the complete trace and the total checkpoint count.
  RecordingCheckpointSink full_sink;
  memtrace::VectorTraceSink full_trace;
  {
    core::ExecContext ctx;
    ctx.checkpoint_sink = &full_sink;
    memtrace::TraceScope scope(&full_trace);
    ASSERT_TRUE(core::TryObliviousJoin(tc.t1, tc.t2, ctx).ok());
  }
  const uint64_t total = full_sink.checkpoints().size();
  ASSERT_GT(total, 2u);

  // Cancelled run: fire the token mid-pipeline, at a public checkpoint.
  const uint64_t cancel_at = total / 2;
  CancelToken token;
  CancelAtCheckpointSink cancel_sink(&token, cancel_at);
  memtrace::VectorTraceSink cancelled_trace;
  {
    core::ExecContext ctx;
    ctx.cancel_token = &token;
    ctx.checkpoint_sink = &cancel_sink;
    memtrace::TraceScope scope(&cancelled_trace);
    const auto r = core::TryObliviousJoin(tc.t1, tc.t2, ctx);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  }
  // Observed exactly through the cancellation checkpoint, not beyond.
  EXPECT_EQ(cancel_sink.last_seq(), cancel_at);

  // The cancelled run's access trace is a byte-identical prefix of the
  // uncancelled run's: between checkpoints the pipeline is
  // non-interruptible, and the poll schedule is a function of public sizes.
  const auto& full = full_trace.events();
  const auto& part = cancelled_trace.events();
  ASSERT_LT(part.size(), full.size());
  for (size_t i = 0; i < part.size(); ++i) {
    ASSERT_EQ(part[i], full[i]) << "trace diverged at event " << i;
  }
}

// ---------------------------------------------------------------------------
// Fallible plan execution and fault-annotated explains (core/plan.h).

TEST(TryRunTest, NullPlanIsInvalidArgument) {
  core::Executor executor(core::ExecContext{});
  const auto r = executor.TryRun(nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(TryRunTest, MatchesExecuteOnCleanRuns) {
  const auto tc = workload::PowerLaw(32, 2.0, 4);
  const auto plan =
      core::Distinct(core::Join(core::Scan(tc.t1), core::Scan(tc.t2)));
  core::Executor plain(core::ExecContext{});
  const core::PlanResult expected = plain.Execute(plan);
  core::Executor fallible(core::ExecContext{});
  const auto r = fallible.TryRun(plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().table.rows(), expected.table.rows());
}

TEST(TryRunTest, CancellationSurfacesThroughExecutor) {
  const auto tc = workload::PowerLaw(32, 2.0, 4);
  const auto plan = core::Join(core::Scan(tc.t1), core::Scan(tc.t2));
  CancelToken token;
  token.Cancel();
  core::ExecContext ctx;
  ctx.cancel_token = &token;
  core::Executor executor(ctx);
  const auto r = executor.TryRun(plan);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(TryRunTest, ExplainPlanAnnotatesFaultCounters) {
  const auto tc = workload::OneToOne(256, 3);
  const auto plan =
      core::Join(core::Scan(tc.t1), core::Scan(tc.t2), /*shards=*/4);
  core::Executor executor(core::ExecContext{});
  core::PlanResult result;
  {
    ScopedFaultInjection scoped("epc_evict:once");
    const auto r = executor.TryRun(plan);
    ASSERT_TRUE(r.ok());
    result = r.value();
  }
  const std::string annotated = core::ExplainPlan(plan, executor.node_stats());
  EXPECT_NE(annotated.find("shards=2"), std::string::npos) << annotated;
  EXPECT_NE(annotated.find("degraded=1"), std::string::npos) << annotated;
  EXPECT_NE(annotated.find("faults=1"), std::string::npos) << annotated;
  // A clean run renders no resilience markers at all (injection pinned
  // off so an ambient OBLIVDB_FAULT_SPEC can't dirty the baseline).
  ScopedFaultInjection off("");
  core::Executor clean(core::ExecContext{});
  ASSERT_TRUE(clean.TryRun(plan).ok());
  const std::string plain = core::ExplainPlan(plan, clean.node_stats());
  EXPECT_EQ(plain.find("faults="), std::string::npos) << plain;
  EXPECT_EQ(plain.find("degraded="), std::string::npos) << plain;
}

TEST(TryRunTest, QueryInterpreterRejectsIllFormedGracefully) {
  typecheck::QueryCatalog catalog;  // empty: every scan is unknown
  typecheck::QueryInterpreter interp(catalog);
  const auto r = interp.TryRun(typecheck::QScan("no_such_table"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("no_such_table"), std::string::npos);
}

TEST(TryRunTest, QueryInterpreterRunsCheckedQueries) {
  const auto tc = workload::PowerLaw(32, 2.0, 4);
  typecheck::QueryCatalog catalog;
  catalog.tables["t1"] = tc.t1;
  catalog.tables["t2"] = tc.t2;
  typecheck::QueryInterpreter interp(catalog);
  const auto r = interp.TryRun(
      typecheck::QJoin(typecheck::QScan("t1"), typecheck::QScan("t2")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().join_rows, core::ObliviousJoin(tc.t1, tc.t2));
}

// ---------------------------------------------------------------------------
// ThreadPool no-throw contract (common/thread_pool.h).

TEST(ThreadPoolDeathTest, ThrowingTaskAbortsNamingTheTask) {
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        TaskGroup group(pool);
        group.Run([] { throw std::runtime_error("kaboom"); }, "explode");
        group.Wait();
      },
      "ThreadPool task 'explode' violated the no-throw contract.*kaboom");
}

}  // namespace
}  // namespace oblivdb
