#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baselines/nested_loop.h"
#include "baselines/opaque_join.h"
#include "baselines/oram_join.h"
#include "baselines/sort_merge.h"
#include "workload/generators.h"

namespace oblivdb::baselines {
namespace {

// ---------------------------------------------------------------------------
// SortMergeJoin (also the oracle for everything else, so test it hard).

TEST(SortMergeTest, SmallExample) {
  const Table t1("T1", {{1, 10}, {1, 11}, {2, 20}});
  const Table t2("T2", {{1, 30}, {2, 40}, {3, 50}});
  const auto rows = SortMergeJoin(t1, t2);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (JoinedRecord{1, {10, 0}, {30, 0}}));
  EXPECT_EQ(rows[1], (JoinedRecord{1, {11, 0}, {30, 0}}));
  EXPECT_EQ(rows[2], (JoinedRecord{2, {20, 0}, {40, 0}}));
}

TEST(SortMergeTest, OutputSorted) {
  const auto tc = workload::PowerLaw(50, 2.0, 3);
  const auto rows = SortMergeJoin(tc.t1, tc.t2);
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
  EXPECT_EQ(rows.size(), tc.expected_m);
}

TEST(SortMergeTest, SizeMatchesGenerators) {
  for (const auto& tc : workload::GenerateTestSuite(40, 9)) {
    EXPECT_EQ(SortMergeJoinSize(tc.t1, tc.t2), tc.expected_m) << tc.name;
  }
}

TEST(SortMergeTest, EmptyInputs) {
  EXPECT_TRUE(SortMergeJoin(Table("a"), Table("b")).empty());
  EXPECT_EQ(SortMergeJoinSize(Table("a", {{1, 1}}), Table("b")), 0u);
}

// ---------------------------------------------------------------------------
// Oblivious nested-loop join.

class NestedLoopTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NestedLoopTest, MatchesSortMerge) {
  const uint64_t n = GetParam();
  for (uint64_t seed = 0; seed < 3; ++seed) {
    const auto tc = workload::PowerLaw(n, 2.0, seed + n);
    EXPECT_EQ(ObliviousNestedLoopJoin(tc.t1, tc.t2),
              SortMergeJoin(tc.t1, tc.t2))
        << tc.name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NestedLoopTest,
                         ::testing::Values(4, 8, 16, 24));

TEST(NestedLoopTest, SingleGroupCartesian) {
  const auto tc = workload::SingleGroup(5, 6, 1);
  const auto rows = ObliviousNestedLoopJoin(tc.t1, tc.t2);
  EXPECT_EQ(rows.size(), 30u);
  EXPECT_EQ(rows, SortMergeJoin(tc.t1, tc.t2));
}

TEST(NestedLoopTest, NoMatches) {
  const Table t1("a", {{1, 1}});
  const Table t2("b", {{2, 2}});
  EXPECT_TRUE(ObliviousNestedLoopJoin(t1, t2).empty());
}

// ---------------------------------------------------------------------------
// Opaque-style PK-FK join.

TEST(OpaqueJoinTest, BasicPkFk) {
  const Table pk("pk", {{1, 100}, {2, 200}, {3, 300}});
  const Table fk("fk", {{2, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto rows = OpaquePkFkJoin(pk, fk);
  ASSERT_EQ(rows.size(), 4u);
  // Sorted by (j, d2): keys 1, 2, 2, 3.
  EXPECT_EQ(rows[0].key, 1u);
  EXPECT_EQ(rows[0].payload1[0], 100u);
  EXPECT_EQ(rows[0].payload2[0], 2u);
  EXPECT_EQ(rows[1].key, 2u);
  EXPECT_EQ(rows[3].key, 3u);
}

TEST(OpaqueJoinTest, UnmatchedForeignRowsDropped) {
  const Table pk("pk", {{1, 100}});
  const Table fk("fk", {{1, 1}, {9, 2}});
  const auto rows = OpaquePkFkJoin(pk, fk);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].key, 1u);
}

TEST(OpaqueJoinTest, MatchesSortMergeOnPkFkWorkloads) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const auto tc = workload::PrimaryForeign(10, 25, seed);
    auto ours = OpaquePkFkJoin(tc.t1, tc.t2);
    auto reference = SortMergeJoin(tc.t1, tc.t2);
    std::sort(ours.begin(), ours.end());
    std::sort(reference.begin(), reference.end());
    EXPECT_EQ(ours, reference) << "seed " << seed;
  }
}

TEST(OpaqueJoinTest, EmptyForeign) {
  const Table pk("pk", {{1, 100}});
  EXPECT_TRUE(OpaquePkFkJoin(pk, Table("fk")).empty());
}

// ---------------------------------------------------------------------------
// ORAM-backed sort-merge join.

class OramJoinTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OramJoinTest, MatchesSortMerge) {
  const uint64_t n = GetParam();
  const auto tc = workload::PowerLaw(n, 2.0, n * 5 + 1);
  const uint64_t m = SortMergeJoinSize(tc.t1, tc.t2);
  const OramJoinResult result = OramSortMergeJoin(tc.t1, tc.t2, m);
  EXPECT_EQ(result.rows, SortMergeJoin(tc.t1, tc.t2)) << tc.name;
  EXPECT_GT(result.physical_bucket_accesses, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, OramJoinTest, ::testing::Values(4, 8, 16, 32));

TEST(OramJoinTest, DuplicatesAcrossGroups) {
  const Table t1("a", {{1, 10}, {1, 11}, {2, 20}, {2, 21}});
  const Table t2("b", {{1, 30}, {1, 31}, {2, 40}});
  const uint64_t m = SortMergeJoinSize(t1, t2);
  EXPECT_EQ(m, 6u);
  EXPECT_EQ(OramSortMergeJoin(t1, t2, m).rows, SortMergeJoin(t1, t2));
}

TEST(OramJoinTest, EmptyInputs) {
  EXPECT_TRUE(OramSortMergeJoin(Table("a"), Table("b"), 0).rows.empty());
  EXPECT_TRUE(
      OramSortMergeJoin(Table("a", {{1, 1}}), Table("b"), 0).rows.empty());
}

TEST(OramJoinTest, PhysicalAccessesDwarfLogicalOnes) {
  // The Omega(log n) ORAM blowup with Z=4 buckets: physical bucket touches
  // should exceed logical accesses by a wide margin.
  const auto tc = workload::OneToOne(32, 2);
  const uint64_t m = SortMergeJoinSize(tc.t1, tc.t2);
  const auto result = OramSortMergeJoin(tc.t1, tc.t2, m);
  // Logical accesses: two bitonic sorts + merge, well under 10k here.
  EXPECT_GT(result.physical_bucket_accesses, 10000u);
}

}  // namespace
}  // namespace oblivdb::baselines
