#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "crypto/chacha20.h"
#include "memtrace/oarray.h"
#include "memtrace/sinks.h"
#include "obliv/compact.h"
#include "obliv/ct.h"

namespace oblivdb::obliv {
namespace {

struct Row {
  uint64_t value = 0;
  uint64_t keep_flag = 0;
  uint64_t dest = 0;
};
uint64_t GetRouteDest(const Row& r) { return r.dest; }
void SetRouteDest(Row& r, uint64_t d) { r.dest = d; }

struct KeepFlagged {
  uint64_t operator()(const Row& r) const {
    return ct::EqMask(r.keep_flag, 1);
  }
};

memtrace::OArray<Row> MakeInput(const std::vector<std::pair<uint64_t, bool>>&
                                    rows) {
  memtrace::OArray<Row> arr(rows.size(), "cmp");
  for (size_t i = 0; i < rows.size(); ++i) {
    arr.Write(i, Row{rows[i].first, rows[i].second ? 1u : 0u, 0});
  }
  return arr;
}

std::vector<uint64_t> KeptPrefix(const memtrace::OArray<Row>& arr,
                                 uint64_t kept) {
  std::vector<uint64_t> v;
  for (uint64_t i = 0; i < kept; ++i) v.push_back(arr.Read(i).value);
  return v;
}

TEST(CompactTest, BasicInterleaved) {
  auto arr = MakeInput({{10, false}, {11, true}, {12, false}, {13, true},
                        {14, true}, {15, false}});
  const uint64_t kept = ObliviousCompact(arr, KeepFlagged{});
  EXPECT_EQ(kept, 3u);
  EXPECT_EQ(KeptPrefix(arr, kept), (std::vector<uint64_t>{11, 13, 14}));
}

TEST(CompactTest, KeepAll) {
  auto arr = MakeInput({{1, true}, {2, true}, {3, true}});
  EXPECT_EQ(ObliviousCompact(arr, KeepFlagged{}), 3u);
  EXPECT_EQ(KeptPrefix(arr, 3), (std::vector<uint64_t>{1, 2, 3}));
}

TEST(CompactTest, KeepNone) {
  auto arr = MakeInput({{1, false}, {2, false}});
  EXPECT_EQ(ObliviousCompact(arr, KeepFlagged{}), 0u);
}

TEST(CompactTest, EmptyArray) {
  memtrace::OArray<Row> arr(0, "cmp");
  EXPECT_EQ(ObliviousCompact(arr, KeepFlagged{}), 0u);
}

class CompactRandomTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CompactRandomTest, MatchesSortBasedReferenceAndPreservesOrder) {
  const size_t n = GetParam();
  crypto::ChaCha20Rng rng(n + 99);
  for (int iter = 0; iter < 15; ++iter) {
    std::vector<std::pair<uint64_t, bool>> rows;
    std::vector<uint64_t> expect;
    for (size_t i = 0; i < n; ++i) {
      const bool keep = rng.Uniform(2) == 0;
      rows.push_back({100 + i, keep});
      if (keep) expect.push_back(100 + i);
    }
    auto by_route = MakeInput(rows);
    auto by_sort = MakeInput(rows);
    const uint64_t k1 = ObliviousCompact(by_route, KeepFlagged{});
    const uint64_t k2 = ObliviousCompactBySort(by_sort, KeepFlagged{});
    ASSERT_EQ(k1, expect.size());
    ASSERT_EQ(k2, expect.size());
    ASSERT_EQ(KeptPrefix(by_route, k1), expect);
    ASSERT_EQ(KeptPrefix(by_sort, k2), expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompactRandomTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 100, 255));

TEST(CompactTest, TraceIndependentOfSelection) {
  auto traced = [](const std::vector<std::pair<uint64_t, bool>>& rows) {
    memtrace::VectorTraceSink sink;
    memtrace::TraceScope scope(&sink);
    auto arr = MakeInput(rows);
    ObliviousCompact(arr, KeepFlagged{});
    return sink;
  };
  const auto a = traced({{1, true}, {2, false}, {3, true}, {4, false}});
  const auto b = traced({{9, false}, {8, false}, {7, false}, {6, true}});
  EXPECT_TRUE(a.SameTraceAs(b));
}

TEST(CompactTest, RouteCheaperThanSortAtScale) {
  // The O(n log n) vs O(n log^2 n) gap should show in operation counts.
  const size_t n = 1024;
  std::vector<std::pair<uint64_t, bool>> rows;
  for (size_t i = 0; i < n; ++i) rows.push_back({i, i % 3 == 0});
  PrimitiveStats route_stats, sort_stats;
  auto a = MakeInput(rows);
  auto b = MakeInput(rows);
  ObliviousCompact(a, KeepFlagged{}, &route_stats);
  ObliviousCompactBySort(b, KeepFlagged{}, &sort_stats);
  EXPECT_LT(route_stats.route_ops, sort_stats.sort_comparisons);
}

}  // namespace
}  // namespace oblivdb::obliv
