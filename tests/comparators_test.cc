// Exhaustive checks of the pipeline's constant-time comparators against
// plain std::tuple orderings, plus strict-weak-order properties.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/comparators.h"
#include "crypto/chacha20.h"
#include "obliv/routing.h"

namespace oblivdb::core {
namespace {

constexpr uint64_t kOnes = ~uint64_t{0};

Entry E(uint64_t j, uint64_t d0, uint64_t d1, uint64_t tid, uint64_t dest) {
  Entry e;
  e.join_key = j;
  e.payload0 = d0;
  e.payload1 = d1;
  e.tid = tid;
  e.dest = dest;
  return e;
}

std::vector<Entry> SmallUniverse() {
  std::vector<Entry> all;
  for (uint64_t j : {0u, 1u, 2u}) {
    for (uint64_t d0 : {0u, 1u}) {
      for (uint64_t d1 : {0u, 1u}) {
        for (uint64_t tid : {1u, 2u}) {
          for (uint64_t dest : {0u, 1u, 3u}) {
            all.push_back(E(j, d0, d1, tid, dest));
          }
        }
      }
    }
  }
  return all;
}

template <typename Less, typename KeyFn>
void CheckAgainstReference(const Less& less, const KeyFn& key) {
  const auto universe = SmallUniverse();
  for (const Entry& a : universe) {
    for (const Entry& b : universe) {
      const uint64_t mask = less(a, b);
      ASSERT_TRUE(mask == 0 || mask == kOnes) << "non-canonical mask";
      ASSERT_EQ(mask == kOnes, key(a) < key(b));
    }
  }
}

TEST(ComparatorsTest, ByJoinKeyThenTidMatchesTuple) {
  CheckAgainstReference(ByJoinKeyThenTidLess{}, [](const Entry& e) {
    return std::tuple(e.join_key, e.tid);
  });
}

TEST(ComparatorsTest, ByTidThenJoinKeyThenDataMatchesTuple) {
  CheckAgainstReference(ByTidThenJoinKeyThenDataLess{}, [](const Entry& e) {
    return std::tuple(e.tid, e.join_key, e.payload0, e.payload1);
  });
}

TEST(ComparatorsTest, ByJoinKeyThenAlignMatchesTuple) {
  auto universe = SmallUniverse();
  for (Entry& e : universe) e.align_ii = e.payload0 + 2 * e.payload1;
  ByJoinKeyThenAlignIndexLess less;
  for (const Entry& a : universe) {
    for (const Entry& b : universe) {
      ASSERT_EQ(less(a, b) == kOnes,
                std::tuple(a.join_key, a.align_ii) <
                    std::tuple(b.join_key, b.align_ii));
    }
  }
}

TEST(ComparatorsTest, NullsLastByDestMatchesReference) {
  obliv::NullsLastByDestLess less;
  const auto universe = SmallUniverse();
  auto key = [](const Entry& e) {
    return std::tuple(e.dest == 0 ? 1 : 0, e.dest);
  };
  for (const Entry& a : universe) {
    for (const Entry& b : universe) {
      ASSERT_EQ(less(a, b) == kOnes, key(a) < key(b));
    }
  }
}

// Strict weak order properties on random entries (irreflexive, asymmetric,
// transitive on a sample).
TEST(ComparatorsTest, StrictWeakOrderProperties) {
  crypto::ChaCha20Rng rng(15);
  std::vector<Entry> sample;
  for (int i = 0; i < 60; ++i) {
    sample.push_back(E(rng.Uniform(4), rng.Uniform(3), rng.Uniform(2),
                       1 + rng.Uniform(2), rng.Uniform(5)));
  }
  ByTidThenJoinKeyThenDataLess less;
  for (const Entry& a : sample) {
    ASSERT_EQ(less(a, a), 0u);  // irreflexive
    for (const Entry& b : sample) {
      if (less(a, b) == kOnes) {
        ASSERT_EQ(less(b, a), 0u);  // asymmetric
      }
      for (const Entry& c : sample) {
        if (less(a, b) == kOnes && less(b, c) == kOnes) {
          ASSERT_EQ(less(a, c), kOnes);  // transitive
        }
      }
    }
  }
}

}  // namespace
}  // namespace oblivdb::core
