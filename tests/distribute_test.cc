#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "crypto/chacha20.h"
#include "memtrace/oarray.h"
#include "memtrace/sinks.h"
#include "obliv/distribute.h"

namespace oblivdb::obliv {
namespace {

struct Slot {
  uint64_t value = 0;
  uint64_t dest = 0;
};
uint64_t GetRouteDest(const Slot& s) { return s.dest; }
void SetRouteDest(Slot& s, uint64_t d) { s.dest = d; }

// Input elements in *arbitrary* order (ObliviousDistribute sorts first),
// value 1000+i tied to destination dests[i].
memtrace::OArray<Slot> MakeInput(const std::vector<uint64_t>& dests,
                                 size_t m) {
  memtrace::OArray<Slot> arr(m, "dist");
  for (size_t i = 0; i < dests.size(); ++i) {
    arr.Write(i, Slot{1000 + i, dests[i]});
  }
  return arr;
}

void ExpectDistributed(const memtrace::OArray<Slot>& arr,
                       const std::vector<uint64_t>& dests) {
  for (size_t i = 0; i < dests.size(); ++i) {
    if (dests[i] == 0) continue;  // null input, discarded into slack
    EXPECT_EQ(arr.Read(dests[i] - 1).value, 1000 + i) << "element " << i;
  }
}

TEST(DistributeTest, UnsortedInputFigure3) {
  // Figure 3's example destinations, deliberately shuffled.
  auto arr = MakeInput({4, 1, 3, 8, 6}, 8);
  ObliviousDistribute(arr, 5);
  ExpectDistributed(arr, {4, 1, 3, 8, 6});
}

TEST(DistributeTest, EqualsSortWhenMEqualsN) {
  auto arr = MakeInput({3, 1, 4, 2, 5}, 5);
  ObliviousDistribute(arr, 5);
  ExpectDistributed(arr, {3, 1, 4, 2, 5});
}

TEST(DistributeTest, NullInputsLandInSlack) {
  // Ext generalization: elements with dest 0 are dropped.
  auto arr = MakeInput({3, 0, 1, 0, 5}, 6);
  ObliviousDistribute(arr, 5);
  ExpectDistributed(arr, {3, 0, 1, 0, 5});
  // Slack slots (2, 4, 6 are 1-based dests in use -> 0-based 2,0,4 used).
  EXPECT_EQ(arr.Read(1).dest, 0u);
  EXPECT_EQ(arr.Read(3).dest, 0u);
  EXPECT_EQ(arr.Read(5).dest, 0u);
}

TEST(DistributeTest, OutputSmallerThanInputArray) {
  // m < n case from Ext-Oblivious-Distribute: array keeps size n; the
  // logical result is the prefix of length m.
  auto arr = MakeInput({2, 0, 0, 1, 0}, 5);  // n = 5, live dests <= m = 2
  ObliviousDistribute(arr, 5);
  EXPECT_EQ(arr.Read(0).value, 1003u);  // dest 1
  EXPECT_EQ(arr.Read(1).value, 1000u);  // dest 2
}

class DistributeRandomTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(DistributeRandomTest, RandomInjectionsRouteCorrectly) {
  const auto [n, m] = GetParam();
  crypto::ChaCha20Rng rng(n * 1000 + m);
  for (int iter = 0; iter < 10; ++iter) {
    // Random injective f: choose n distinct dests from {1..m}, shuffled.
    std::vector<uint64_t> all(m);
    for (size_t d = 0; d < m; ++d) all[d] = d + 1;
    std::shuffle(all.begin(), all.end(), rng);
    std::vector<uint64_t> dests(all.begin(), all.begin() + n);
    auto arr = MakeInput(dests, m);
    ObliviousDistribute(arr, n);
    ExpectDistributed(arr, dests);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DistributeRandomTest,
    ::testing::Values(std::pair<size_t, size_t>{1, 1},
                      std::pair<size_t, size_t>{1, 10},
                      std::pair<size_t, size_t>{5, 8},
                      std::pair<size_t, size_t>{8, 8},
                      std::pair<size_t, size_t>{10, 100},
                      std::pair<size_t, size_t>{63, 64},
                      std::pair<size_t, size_t>{100, 257},
                      std::pair<size_t, size_t>{200, 200}));

TEST(DistributeTest, DeterministicTraceInputIndependent) {
  auto traced = [](const std::vector<uint64_t>& dests, size_t n, size_t m) {
    memtrace::VectorTraceSink sink;
    memtrace::TraceScope scope(&sink);
    auto arr = MakeInput(dests, m);
    ObliviousDistribute(arr, n);
    return sink;
  };
  const auto a = traced({4, 1, 3, 8, 6}, 5, 8);
  const auto b = traced({8, 7, 6, 5, 4}, 5, 8);
  EXPECT_TRUE(a.SameTraceAs(b));
}

// --- Probabilistic variant ---------------------------------------------------

class ProbabilisticDistributeTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(ProbabilisticDistributeTest, PlacesAllElements) {
  const auto [n, m] = GetParam();
  crypto::ChaCha20Rng rng(n * 7 + m);
  std::vector<uint64_t> all(m);
  for (size_t d = 0; d < m; ++d) all[d] = d + 1;
  std::shuffle(all.begin(), all.end(), rng);
  std::vector<uint64_t> dests(all.begin(), all.begin() + n);
  auto arr = MakeInput(dests, m);
  ObliviousDistributeProbabilistic(arr, n, /*prp_key=*/1234);
  ExpectDistributed(arr, dests);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ProbabilisticDistributeTest,
    ::testing::Values(std::pair<size_t, size_t>{1, 1},
                      std::pair<size_t, size_t>{4, 4},
                      std::pair<size_t, size_t>{5, 8},
                      std::pair<size_t, size_t>{60, 64},
                      std::pair<size_t, size_t>{100, 130}));

TEST(ProbabilisticDistributeTest, ScatterLocationsVaryWithKey) {
  // Different PRP keys should produce different scatter write patterns
  // (that's the "probabilistically oblivious" part).
  auto scatter_trace = [](uint64_t key) {
    memtrace::VectorTraceSink sink;
    memtrace::TraceScope scope(&sink);
    auto arr = MakeInput({1, 2, 3, 4}, 16);
    ObliviousDistributeProbabilistic(arr, 4, key);
    return sink;
  };
  const auto a = scatter_trace(1);
  const auto b = scatter_trace(2);
  EXPECT_FALSE(a.SameTraceAs(b));
}

TEST(ProbabilisticDistributeTest, SameKeySameTrace) {
  auto run = [](const std::vector<uint64_t>& dests) {
    memtrace::VectorTraceSink sink;
    memtrace::TraceScope scope(&sink);
    auto arr = MakeInput(dests, 16);
    ObliviousDistributeProbabilistic(arr, 4, /*prp_key=*/9);
    return sink;
  };
  // Same destinations -> identical trace (the scheme is deterministic given
  // the key; obliviousness comes from the key being fresh per run).
  EXPECT_TRUE(run({1, 5, 9, 13}).SameTraceAs(run({1, 5, 9, 13})));
}

// --- Tag-sort-backed PRP undo ------------------------------------------------

// 48-byte element: sits exactly on kDistributeTagMinBytes, so it crosses to
// the tag undo on size alone.
struct WideSlot {
  uint64_t value = 0;
  uint64_t dest = 0;
  uint64_t pad[4] = {};
};
static_assert(sizeof(WideSlot) == kDistributeTagMinBytes);
uint64_t GetRouteDest(const WideSlot& s) { return s.dest; }
void SetRouteDest(WideSlot& s, uint64_t d) { s.dest = d; }

template <typename T>
std::vector<std::vector<uint8_t>> Bytes(const memtrace::OArray<T>& a) {
  std::vector<std::vector<uint8_t>> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const T e = a.Read(i);
    out[i].resize(sizeof(T));
    std::memcpy(out[i].data(), &e, sizeof(T));
  }
  return out;
}

// Full random injection of n = m elements with value tied to destination.
template <typename T>
memtrace::OArray<T> MakeFullInjection(size_t m, uint64_t seed,
                                      const char* name) {
  crypto::ChaCha20Rng rng(seed);
  std::vector<uint64_t> dests(m);
  for (size_t d = 0; d < m; ++d) dests[d] = d + 1;
  std::shuffle(dests.begin(), dests.end(), rng);
  memtrace::OArray<T> arr(m, name);
  for (size_t i = 0; i < m; ++i) {
    T e{};
    e.value = 4000 + dests[i];
    SetRouteDest(e, dests[i]);
    arr.Write(i, e);
  }
  return arr;
}

// The tag undo must reproduce the full-width undo sort's placement
// byte-for-byte, at every width and on both sides of the kAuto crossover
// boundary (the undo keys are distinct and NullsLastByDestLess's
// projection is faithful, so the permutations are identical by
// construction — this pins it).
template <typename T>
void ExpectUndoPathsAgree(size_t m, uint64_t seed) {
  auto full = MakeFullInjection<T>(m, seed, "undo_full");
  auto tagged = MakeFullInjection<T>(m, seed, "undo_tag");
  ObliviousDistributeProbabilistic(full, m, /*prp_key=*/seed * 3 + 1, nullptr,
                                   SortPolicy::kBlocked, nullptr,
                                   DistributeUndo::kFullSort);
  ObliviousDistributeProbabilistic(tagged, m, /*prp_key=*/seed * 3 + 1,
                                   nullptr, SortPolicy::kBlocked, nullptr,
                                   DistributeUndo::kTagSort);
  ASSERT_EQ(Bytes(full), Bytes(tagged)) << "m=" << m;
  for (size_t p = 0; p < m; ++p) {
    ASSERT_EQ(full.Read(p).value, 4000 + p + 1) << "slot " << p;
  }
}

TEST(ProbabilisticDistributeTest, UndoPathsAgreeByteForByteAcrossWidths) {
  for (const size_t m : {size_t{64}, size_t{100}, size_t{1} << 10}) {
    ExpectUndoPathsAgree<Slot>(m, m);
    ExpectUndoPathsAgree<WideSlot>(m, m + 1);
  }
}

TEST(ProbabilisticDistributeTest, UndoPathsAgreeAtTheCrossoverBoundary) {
  // Just below and exactly at the kAuto size threshold, on the width that
  // sits exactly at the byte threshold.
  ExpectUndoPathsAgree<WideSlot>(kDistributeTagMinLen - 3, 5);
  ExpectUndoPathsAgree<WideSlot>(kDistributeTagMinLen, 6);
}

// Which path kAuto took is observable from the trace: it must match the
// forced full-sort path for narrow-or-small inputs and the forced tag path
// for wide-and-large inputs.
template <typename T>
std::string UndoTraceDigest(size_t m, DistributeUndo undo) {
  memtrace::HashTraceSink sink;
  std::string digest;
  {
    memtrace::TraceScope scope(&sink);
    auto arr = MakeFullInjection<T>(m, m * 7 + 2, "undo_auto");
    ObliviousDistributeProbabilistic(arr, m, /*prp_key=*/77, nullptr,
                                     SortPolicy::kBlocked, nullptr, undo);
    digest = sink.HexDigest();
  }
  return digest;
}

TEST(ProbabilisticDistributeTest, AutoUndoCrossesOverByWidthAndSize) {
  // Narrow element: full sort regardless of size.
  EXPECT_EQ(UndoTraceDigest<Slot>(kDistributeTagMinLen,
                                  DistributeUndo::kAuto),
            UndoTraceDigest<Slot>(kDistributeTagMinLen,
                                  DistributeUndo::kFullSort));
  // Wide element below the size threshold: still the full sort.
  EXPECT_EQ(UndoTraceDigest<WideSlot>(512, DistributeUndo::kAuto),
            UndoTraceDigest<WideSlot>(512, DistributeUndo::kFullSort));
  // Wide element at the threshold: the tag path.
  EXPECT_EQ(UndoTraceDigest<WideSlot>(kDistributeTagMinLen,
                                      DistributeUndo::kAuto),
            UndoTraceDigest<WideSlot>(kDistributeTagMinLen,
                                      DistributeUndo::kTagSort));
  // And the two strategies genuinely differ in their public sequences.
  EXPECT_NE(UndoTraceDigest<WideSlot>(kDistributeTagMinLen,
                                      DistributeUndo::kFullSort),
            UndoTraceDigest<WideSlot>(kDistributeTagMinLen,
                                      DistributeUndo::kTagSort));
}

TEST(ProbabilisticDistributeTest, TagUndoSameKeySameTrace) {
  auto run = [](const std::vector<uint64_t>& dests) {
    memtrace::VectorTraceSink sink;
    memtrace::TraceScope scope(&sink);
    auto arr = MakeInput(dests, 64);
    ObliviousDistributeProbabilistic(arr, dests.size(), /*prp_key=*/9,
                                     nullptr, SortPolicy::kBlocked, nullptr,
                                     DistributeUndo::kTagSort);
    return sink;
  };
  EXPECT_TRUE(run({1, 5, 9, 13}).SameTraceAs(run({1, 5, 9, 13})));
}

TEST(DistributeTest, BothVariantsAgree) {
  crypto::ChaCha20Rng rng(31337);
  for (int iter = 0; iter < 10; ++iter) {
    const size_t m = 2 + rng.Uniform(100);
    const size_t n = 1 + rng.Uniform(m);
    std::vector<uint64_t> all(m);
    for (size_t d = 0; d < m; ++d) all[d] = d + 1;
    std::shuffle(all.begin(), all.end(), rng);
    std::vector<uint64_t> dests(all.begin(), all.begin() + n);
    auto det = MakeInput(dests, m);
    auto prob = MakeInput(dests, m);
    ObliviousDistribute(det, n);
    ObliviousDistributeProbabilistic(prob, n, rng());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(det.Read(dests[i] - 1).value, prob.Read(dests[i] - 1).value);
    }
  }
}

}  // namespace
}  // namespace oblivdb::obliv
