#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baselines/sort_merge.h"
#include "core/join.h"
#include "obliv/bitonic_sort.h"
#include "workload/generators.h"

namespace oblivdb::core {
namespace {

void ExpectJoinMatchesReference(const Table& t1, const Table& t2,
                                const std::string& label) {
  const std::vector<JoinedRecord> ours = ObliviousJoin(t1, t2);
  const std::vector<JoinedRecord> reference =
      baselines::SortMergeJoin(t1, t2);
  ASSERT_EQ(ours.size(), reference.size()) << label;
  EXPECT_EQ(ours, reference) << label;  // both lexicographic
}

TEST(JoinTest, PaperFigure1Example) {
  // T1 = x:a1 a2, y:b1 b2 b3; T2 = x:u1 u2 u3, y:v1 v2 (Figure 1's tables).
  const Table t1("T1", {{10, 1}, {10, 2}, {20, 1}, {20, 2}, {20, 3}});
  const Table t2("T2", {{10, 1}, {10, 2}, {10, 3}, {20, 1}, {20, 2}});
  const auto rows = ObliviousJoin(t1, t2);
  ASSERT_EQ(rows.size(), 2 * 3 + 3 * 2u);
  ExpectJoinMatchesReference(t1, t2, "figure1");
  // Spot-check the zip order: first row pairs (x, a1) with (x, u1).
  EXPECT_EQ(rows[0].key, 10u);
  EXPECT_EQ(rows[0].payload1[0], 1u);
  EXPECT_EQ(rows[0].payload2[0], 1u);
  EXPECT_EQ(rows[1].payload2[0], 2u);
}

TEST(JoinTest, EmptyInputs) {
  EXPECT_TRUE(ObliviousJoin(Table("a"), Table("b")).empty());
  EXPECT_TRUE(ObliviousJoin(Table("a", {{1, 1}}), Table("b")).empty());
  EXPECT_TRUE(ObliviousJoin(Table("a"), Table("b", {{1, 1}})).empty());
}

TEST(JoinTest, NoMatches) {
  const Table t1("a", {{1, 1}, {2, 2}});
  const Table t2("b", {{3, 3}, {4, 4}});
  EXPECT_TRUE(ObliviousJoin(t1, t2).empty());
}

TEST(JoinTest, SingleRowEachMatching) {
  const Table t1("a", {{5, 100}});
  const Table t2("b", {{5, 200}});
  const auto rows = ObliviousJoin(t1, t2);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].key, 5u);
  EXPECT_EQ(rows[0].payload1[0], 100u);
  EXPECT_EQ(rows[0].payload2[0], 200u);
}

TEST(JoinTest, CartesianSingleGroup) {
  Table t1("a"), t2("b");
  for (uint64_t i = 0; i < 7; ++i) t1.Add(9, i);
  for (uint64_t i = 0; i < 5; ++i) t2.Add(9, 100 + i);
  const auto rows = ObliviousJoin(t1, t2);
  EXPECT_EQ(rows.size(), 35u);
  ExpectJoinMatchesReference(t1, t2, "cartesian");
}

TEST(JoinTest, AsymmetricSizes) {
  Table t1("a"), t2("b");
  t1.Add(1, 10);
  for (uint64_t i = 0; i < 40; ++i) t2.Add(i % 3, 100 + i);
  ExpectJoinMatchesReference(t1, t2, "asymmetric");
}

TEST(JoinTest, DuplicateRowsMultiplicity) {
  // Identical (j, d) rows are distinct tuples; output multiplicity must
  // reflect the product of multiplicities.
  const Table t1("a", {{1, 5}, {1, 5}});
  const Table t2("b", {{1, 6}, {1, 6}, {1, 6}});
  const auto rows = ObliviousJoin(t1, t2);
  EXPECT_EQ(rows.size(), 6u);
  for (const auto& r : rows) {
    EXPECT_EQ(r.payload1[0], 5u);
    EXPECT_EQ(r.payload2[0], 6u);
  }
}

TEST(JoinTest, OutputIsLexicographicallySorted) {
  const auto tc = workload::PowerLaw(60, 2.0, 17);
  const auto rows = ObliviousJoin(tc.t1, tc.t2);
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
}

TEST(JoinTest, StatsArePopulated) {
  const auto tc = workload::OneToOne(32, 4);
  JoinStats stats;
  JoinOptions options;
  options.stats = &stats;
  const auto rows = ObliviousJoin(tc.t1, tc.t2, options);
  EXPECT_EQ(stats.n1, tc.t1.size());
  EXPECT_EQ(stats.n2, tc.t2.size());
  EXPECT_EQ(stats.m, rows.size());
  EXPECT_GT(stats.augment_sort_comparisons, 0u);
  EXPECT_GT(stats.expand_sort_comparisons, 0u);
  EXPECT_GT(stats.expand_route_ops, 0u);
  EXPECT_GT(stats.align_sort_comparisons, 0u);
  EXPECT_GE(stats.total_seconds, 0.0);
}

TEST(JoinTest, JoinSizeAgreesWithFullJoin) {
  for (uint64_t n : {8u, 20u, 33u}) {
    const auto tc = workload::PowerLaw(n, 2.5, n);
    EXPECT_EQ(ObliviousJoinSize(tc.t1, tc.t2),
              ObliviousJoin(tc.t1, tc.t2).size())
        << tc.name;
  }
}

// The paper's §6 battery: "for each n ... 20 tests consisting of various
// different inputs of size n"; outputs were correct in all cases.
class JoinSuiteTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinSuiteTest, AllSuiteCasesMatchReference) {
  const uint64_t n = GetParam();
  for (const auto& tc : workload::GenerateTestSuite(n, /*seed=*/n * 7)) {
    ExpectJoinMatchesReference(tc.t1, tc.t2, tc.name);
    EXPECT_EQ(baselines::SortMergeJoinSize(tc.t1, tc.t2), tc.expected_m)
        << tc.name;
  }
}

INSTANTIATE_TEST_SUITE_P(InputSizes, JoinSuiteTest,
                         ::testing::Values(4, 10, 16, 33, 64, 100));

// Exact operation-count identities: every sort/route in the pipeline is a
// fixed-size network, so JoinStats must equal the closed-form schedule for
// (n1, n2, m) — the precise statement behind Table 3's model column (and
// another way of seeing that the work depends only on the sizes).
TEST(JoinTest, StatsMatchNetworkSizeModelExactly) {
  auto route_ops = [](uint64_t array_len) {
    uint64_t total = 0;
    if (array_len < 2) return total;
    uint64_t p = 1;
    while (p < array_len) p <<= 1;  // CeilPow2
    for (uint64_t j = p / 2; j >= 1; j /= 2) total += array_len - j;
    return total;
  };
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const auto tc = workload::PowerLaw(48, 2.0, seed);
    JoinStats stats;
    JoinOptions options;
    options.stats = &stats;
    (void)ObliviousJoin(tc.t1, tc.t2, options);
    const uint64_t n = stats.n1 + stats.n2;
    const uint64_t m = stats.m;
    using obliv::BitonicComparisonCount;
    EXPECT_EQ(stats.augment_sort_comparisons, 2 * BitonicComparisonCount(n));
    EXPECT_EQ(stats.expand_sort_comparisons,
              BitonicComparisonCount(stats.n1) +
                  BitonicComparisonCount(stats.n2));
    EXPECT_EQ(stats.align_sort_comparisons, BitonicComparisonCount(m));
    EXPECT_EQ(stats.expand_route_ops,
              route_ops(std::max(stats.n1, m)) +
                  route_ops(std::max(stats.n2, m)));
  }
}

}  // namespace
}  // namespace oblivdb::core
