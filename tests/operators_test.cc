#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/operators.h"
#include "memtrace/sinks.h"
#include "obliv/ct.h"
#include "workload/generators.h"

namespace oblivdb::core {
namespace {

std::multiset<Record> RowSet(const Table& t) {
  return {t.rows().begin(), t.rows().end()};
}

// ---------------------------------------------------------------------------
// ObliviousSelect.

TEST(SelectTest, KeepsMatchingRows) {
  const Table t("T", {{1, 10}, {2, 200}, {3, 30}, {4, 400}});
  const Table out = ObliviousSelect(t, [](const Record& r) {
    return ct::LessMask(r.payload[0], 100);
  });
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.rows()[0].payload[0], 10u);
  EXPECT_EQ(out.rows()[1].payload[0], 30u);
}

TEST(SelectTest, PreservesInputOrder) {
  const Table t("T", {{9, 1}, {1, 2}, {5, 3}, {1, 4}});
  const Table out =
      ObliviousSelect(t, [](const Record& r) { return ct::EqMask(r.key, 1); });
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.rows()[0].payload[0], 2u);
  EXPECT_EQ(out.rows()[1].payload[0], 4u);
}

TEST(SelectTest, KeepAllAndKeepNone) {
  const Table t("T", {{1, 1}, {2, 2}});
  EXPECT_EQ(ObliviousSelect(t, [](const Record&) {
              return ~uint64_t{0};
            }).size(),
            2u);
  EXPECT_EQ(ObliviousSelect(t, [](const Record&) {
              return uint64_t{0};
            }).size(),
            0u);
  EXPECT_TRUE(ObliviousSelect(Table("e"), [](const Record&) {
                return ~uint64_t{0};
              }).empty());
}

TEST(SelectTest, MatchesStdFilterOnRandomInput) {
  const auto tc = workload::PowerLaw(60, 2.0, 3);
  const Table out = ObliviousSelect(tc.t1, [](const Record& r) {
    return ct::EqMask(r.payload[0] & 1, 1);
  });
  std::vector<Record> expect;
  for (const Record& r : tc.t1.rows()) {
    if ((r.payload[0] & 1) == 1) expect.push_back(r);
  }
  EXPECT_EQ(out.rows(), expect);
}

TEST(SelectTest, TraceDependsOnlyOnSizes) {
  auto hash_of = [](const Table& t, uint64_t threshold) {
    memtrace::HashTraceSink sink;
    memtrace::TraceScope scope(&sink);
    (void)ObliviousSelect(t, [threshold](const Record& r) {
      return ct::LessMask(r.payload[0], threshold);
    });
    return sink.HexDigest();
  };
  // Same input size, same output size (2), different selected rows.
  const Table a("a", {{1, 1}, {2, 2}, {3, 30}, {4, 40}});
  const Table b("b", {{1, 10}, {2, 20}, {3, 3}, {4, 4}});
  EXPECT_EQ(hash_of(a, 10), hash_of(b, 10));
}

// ---------------------------------------------------------------------------
// ObliviousDistinct.

TEST(DistinctTest, DropsExactDuplicates) {
  const Table t("T", {{1, 10}, {1, 10}, {1, 11}, {2, 20}, {2, 20}, {2, 20}});
  const Table out = ObliviousDistinct(t);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out.rows()[0], (Record{1, {10, 0}}));
  EXPECT_EQ(out.rows()[1], (Record{1, {11, 0}}));
  EXPECT_EQ(out.rows()[2], (Record{2, {20, 0}}));
}

TEST(DistinctTest, DistinguishesBySecondPayloadWord) {
  Table t("T");
  t.Add(1, 10, 0);
  t.Add(1, 10, 1);  // differs only in payload word 1
  EXPECT_EQ(ObliviousDistinct(t).size(), 2u);
}

TEST(DistinctTest, AlreadyDistinctUnchangedAsSet) {
  const auto tc = workload::OneToOne(30, 2);
  const Table out = ObliviousDistinct(tc.t1);
  EXPECT_EQ(RowSet(out), RowSet(tc.t1));
}

TEST(DistinctTest, EmptyAndSingleton) {
  EXPECT_TRUE(ObliviousDistinct(Table("e")).empty());
  const Table one("o", {{5, 50}});
  EXPECT_EQ(ObliviousDistinct(one).rows(), one.rows());
}

// ---------------------------------------------------------------------------
// Semi- and anti-joins.

TEST(SemiJoinTest, KeepsMatchedLeftRowsOnce) {
  const Table t1("T1", {{1, 10}, {2, 20}, {3, 30}});
  const Table t2("T2", {{1, 0}, {1, 1}, {3, 2}});  // key 1 matches twice
  const Table out = ObliviousSemiJoin(t1, t2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.rows()[0].key, 1u);
  EXPECT_EQ(out.rows()[1].key, 3u);
}

TEST(AntiJoinTest, ComplementOfSemiJoin) {
  const Table t1("T1", {{1, 10}, {2, 20}, {3, 30}});
  const Table t2("T2", {{1, 0}, {3, 2}});
  const Table anti = ObliviousAntiJoin(t1, t2);
  ASSERT_EQ(anti.size(), 1u);
  EXPECT_EQ(anti.rows()[0].key, 2u);
}

TEST(SemiJoinTest, PartitionProperty) {
  // Semi-join and anti-join partition T1 for any inputs.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const auto tc = workload::PowerLaw(40, 2.0, seed);
    const Table semi = ObliviousSemiJoin(tc.t1, tc.t2);
    const Table anti = ObliviousAntiJoin(tc.t1, tc.t2);
    EXPECT_EQ(semi.size() + anti.size(), tc.t1.size()) << seed;
    std::multiset<Record> both = RowSet(semi);
    for (const Record& r : anti.rows()) both.insert(r);
    EXPECT_EQ(both, RowSet(tc.t1)) << seed;
    // Every semi row's key must exist in t2, every anti row's must not.
    std::set<uint64_t> t2_keys;
    for (const Record& r : tc.t2.rows()) t2_keys.insert(r.key);
    for (const Record& r : semi.rows()) EXPECT_TRUE(t2_keys.count(r.key));
    for (const Record& r : anti.rows()) EXPECT_FALSE(t2_keys.count(r.key));
  }
}

TEST(SemiJoinTest, DuplicateLeftRowsAllKept) {
  const Table t1("T1", {{1, 10}, {1, 10}, {1, 11}});
  const Table t2("T2", {{1, 99}});
  EXPECT_EQ(ObliviousSemiJoin(t1, t2).size(), 3u);
}

TEST(SemiJoinTest, EmptyInputs) {
  const Table t("T", {{1, 10}});
  EXPECT_TRUE(ObliviousSemiJoin(Table("e"), t).empty());
  EXPECT_TRUE(ObliviousSemiJoin(t, Table("e")).empty());
  EXPECT_EQ(ObliviousAntiJoin(t, Table("e")).size(), 1u);
}

TEST(SemiJoinTest, TraceDependsOnlyOnSizes) {
  auto hash_of = [](const Table& t1, const Table& t2) {
    memtrace::HashTraceSink sink;
    memtrace::TraceScope scope(&sink);
    (void)ObliviousSemiJoin(t1, t2);
    return sink.HexDigest();
  };
  // Same (n1, n2) and same survivor count (2), different match structure.
  const Table a1("a1", {{1, 1}, {2, 2}, {3, 3}});
  const Table a2("a2", {{1, 0}, {2, 0}});
  const Table b1("b1", {{5, 1}, {6, 2}, {7, 3}});
  const Table b2("b2", {{7, 0}, {5, 0}});
  EXPECT_EQ(hash_of(a1, a2), hash_of(b1, b2));
}

// ---------------------------------------------------------------------------
// Union + composition.

TEST(UnionTest, ConcatenatesMultisets) {
  const Table t1("a", {{1, 10}});
  const Table t2("b", {{1, 10}, {2, 20}});
  const Table u = ObliviousUnion(t1, t2);
  EXPECT_EQ(u.size(), 3u);
}

TEST(OperatorsTest, ComposedQueryPlan) {
  // SELECT DISTINCT t1.* FROM t1 WHERE payload < 50 AND key IN (SELECT key
  // FROM t2): select -> semi-join -> distinct, all oblivious.
  const Table t1("T1", {{1, 10}, {1, 10}, {2, 60}, {3, 30}, {4, 40}});
  const Table t2("T2", {{1, 0}, {3, 0}, {2, 0}});
  const Table selected = ObliviousSelect(t1, [](const Record& r) {
    return ct::LessMask(r.payload[0], 50);
  });
  const Table matched = ObliviousSemiJoin(selected, t2);
  const Table result = ObliviousDistinct(matched);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result.rows()[0], (Record{1, {10, 0}}));
  EXPECT_EQ(result.rows()[1], (Record{3, {30, 0}}));
}

}  // namespace
}  // namespace oblivdb::core
