#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "crypto/chacha20.h"
#include "memtrace/oarray.h"
#include "memtrace/sinks.h"
#include "obliv/ct.h"
#include "obliv/parallel_sort.h"

namespace oblivdb::obliv {
namespace {

struct Item {
  uint64_t key = 0;
  uint64_t tag = 0;
};

struct ItemLess {
  uint64_t operator()(const Item& a, const Item& b) const {
    return ct::LessMask(a.key, b.key);
  }
};

std::vector<uint64_t> Keys(const memtrace::OArray<Item>& arr) {
  std::vector<uint64_t> keys;
  for (size_t i = 0; i < arr.size(); ++i) keys.push_back(arr.Read(i).key);
  return keys;
}

class ParallelSortTest
    : public ::testing::TestWithParam<std::pair<size_t, unsigned>> {};

TEST_P(ParallelSortTest, MatchesSequentialResult) {
  const auto [n, threads] = GetParam();
  crypto::ChaCha20Rng rng(n * 7 + threads);
  memtrace::OArray<Item> parallel(n, "par");
  memtrace::OArray<Item> sequential(n, "seq");
  for (size_t i = 0; i < n; ++i) {
    const uint64_t k = rng();
    parallel.Write(i, Item{k, i});
    sequential.Write(i, Item{k, i});
  }
  BitonicSortParallel(parallel, ItemLess{}, threads);
  BitonicSort(sequential, ItemLess{});
  EXPECT_EQ(Keys(parallel), Keys(sequential));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ParallelSortTest,
    ::testing::Values(std::pair<size_t, unsigned>{0, 4},
                      std::pair<size_t, unsigned>{1, 4},
                      std::pair<size_t, unsigned>{100, 2},
                      std::pair<size_t, unsigned>{1000, 4},
                      std::pair<size_t, unsigned>{4096, 2},
                      std::pair<size_t, unsigned>{10000, 4},
                      std::pair<size_t, unsigned>{16384, 8},
                      std::pair<size_t, unsigned>{20000, 3}));

TEST(ParallelSortTest, SingleThreadDelegatesToSequential) {
  memtrace::OArray<Item> arr(257, "one");
  for (size_t i = 0; i < 257; ++i) arr.Write(i, Item{257 - i, i});
  BitonicSortParallel(arr, ItemLess{}, 1);
  const auto keys = Keys(arr);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(ParallelSortTest, SortsAdversarialPatterns) {
  for (unsigned threads : {2u, 4u}) {
    const size_t n = 1 << 13;
    memtrace::OArray<Item> arr(n, "adv");
    // Sawtooth pattern stresses the merge phases.
    for (size_t i = 0; i < n; ++i) arr.Write(i, Item{i % 97, i});
    BitonicSortParallel(arr, ItemLess{}, threads);
    const auto keys = Keys(arr);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  }
}

TEST(ParallelSortDeathTest, RefusesToRunUnderTracing) {
  memtrace::VectorTraceSink sink;
  memtrace::TraceScope scope(&sink);
  memtrace::OArray<Item> arr(8, "traced");
  EXPECT_DEATH(BitonicSortParallel(arr, ItemLess{}, 4), "OBLIVDB_CHECK");
}

}  // namespace
}  // namespace oblivdb::obliv
