#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "crypto/chacha20.h"
#include "memtrace/oarray.h"
#include "memtrace/sinks.h"
#include "obliv/ct.h"
#include "obliv/parallel_sort.h"

namespace oblivdb::obliv {
namespace {

struct Item {
  uint64_t key = 0;
  uint64_t tag = 0;
};

struct ItemLess {
  uint64_t operator()(const Item& a, const Item& b) const {
    return ct::LessMask(a.key, b.key);
  }
};

std::vector<uint64_t> Keys(const memtrace::OArray<Item>& arr) {
  std::vector<uint64_t> keys;
  for (size_t i = 0; i < arr.size(); ++i) keys.push_back(arr.Read(i).key);
  return keys;
}

class ParallelSortTest
    : public ::testing::TestWithParam<std::pair<size_t, unsigned>> {};

TEST_P(ParallelSortTest, MatchesSequentialResult) {
  const auto [n, threads] = GetParam();
  crypto::ChaCha20Rng rng(n * 7 + threads);
  memtrace::OArray<Item> parallel(n, "par");
  memtrace::OArray<Item> sequential(n, "seq");
  for (size_t i = 0; i < n; ++i) {
    const uint64_t k = rng();
    parallel.Write(i, Item{k, i});
    sequential.Write(i, Item{k, i});
  }
  BitonicSortParallel(parallel, ItemLess{}, threads);
  BitonicSort(sequential, ItemLess{});
  EXPECT_EQ(Keys(parallel), Keys(sequential));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ParallelSortTest,
    ::testing::Values(std::pair<size_t, unsigned>{0, 4},
                      std::pair<size_t, unsigned>{1, 4},
                      std::pair<size_t, unsigned>{100, 2},
                      std::pair<size_t, unsigned>{1000, 4},
                      std::pair<size_t, unsigned>{4096, 2},
                      std::pair<size_t, unsigned>{10000, 4},
                      std::pair<size_t, unsigned>{16384, 8},
                      std::pair<size_t, unsigned>{20000, 3}));

TEST(ParallelSortTest, SingleThreadDelegatesToSequential) {
  memtrace::OArray<Item> arr(257, "one");
  for (size_t i = 0; i < 257; ++i) arr.Write(i, Item{257 - i, i});
  BitonicSortParallel(arr, ItemLess{}, 1);
  const auto keys = Keys(arr);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(ParallelSortTest, SortsAdversarialPatterns) {
  for (unsigned threads : {2u, 4u}) {
    const size_t n = 1 << 13;
    memtrace::OArray<Item> arr(n, "adv");
    // Sawtooth pattern stresses the merge phases.
    for (size_t i = 0; i < n; ++i) arr.Write(i, Item{i % 97, i});
    BitonicSortParallel(arr, ItemLess{}, threads);
    const auto keys = Keys(arr);
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  }
}

// The per-task trace buffers, replayed in deterministic order, must yield
// the exact log of the sequential reference network — this is the property
// that makes parallel runs trace-verifiable at all.
class TracedParallelSortTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TracedParallelSortTest, TraceIdenticalToReference) {
  const size_t n = GetParam();

  memtrace::VectorTraceSink reference_trace;
  {
    memtrace::TraceScope scope(&reference_trace);
    memtrace::OArray<Item> arr(n, "arr");
    for (size_t i = 0; i < n; ++i) arr.Write(i, Item{(i * 2654435761u) % n, i});
    BitonicSort(arr, ItemLess{});
  }

  memtrace::VectorTraceSink parallel_trace;
  {
    memtrace::TraceScope scope(&parallel_trace);
    memtrace::OArray<Item> arr(n, "arr");
    for (size_t i = 0; i < n; ++i) arr.Write(i, Item{(i * 2654435761u) % n, i});
    BitonicSortParallel(arr, ItemLess{}, /*threads=*/4);
  }

  EXPECT_TRUE(reference_trace.SameTraceAs(parallel_trace))
      << "parallel trace diverged from the reference network at n = " << n;
}

// Sizes straddling the parallel cutoff (1 << 12) and the cross-pass chunk
// threshold, power-of-two and ragged.
INSTANTIATE_TEST_SUITE_P(Sizes, TracedParallelSortTest,
                         ::testing::Values(100, 4096, 5000, 8192, 10000));

// Exercises the *chunked* traced cross-half pass (span >= 2 * cross_chunk)
// via the test hook: a tiny chunk granularity makes every big merge's
// cross pass split into parallel chunk tasks whose buffers must still
// replay in ascending-start order, reproducing the reference log exactly.
TEST(TracedParallelSortTest, ChunkedCrossPassTraceIdenticalToReference) {
  const size_t n = 6000;

  memtrace::VectorTraceSink reference_trace;
  {
    memtrace::TraceScope scope(&reference_trace);
    memtrace::OArray<Item> arr(n, "arr");
    for (size_t i = 0; i < n; ++i) arr.Write(i, Item{(i * 40503u) % n, i});
    BitonicSort(arr, ItemLess{});
  }

  memtrace::VectorTraceSink parallel_trace;
  {
    memtrace::TraceScope scope(&parallel_trace);
    memtrace::OArray<Item> arr(n, "arr");
    for (size_t i = 0; i < n; ++i) arr.Write(i, Item{(i * 40503u) % n, i});
    BitonicSortRangeParallel(arr, 0, n, ItemLess{}, /*threads=*/4,
                             /*comparisons=*/nullptr, /*cross_chunk=*/256);
  }

  EXPECT_TRUE(reference_trace.SameTraceAs(parallel_trace));
}

TEST(TracedParallelSortTest, TraceIsDataIndependent) {
  auto hash_of = [](uint64_t seed) {
    memtrace::HashTraceSink sink;
    memtrace::TraceScope scope(&sink);
    const size_t n = 6000;
    memtrace::OArray<Item> arr(n, "arr");
    crypto::ChaCha20Rng rng(seed);
    for (size_t i = 0; i < n; ++i) arr.Write(i, Item{rng(), i});
    BitonicSortParallel(arr, ItemLess{}, 4);
    return sink.HexDigest();
  };
  EXPECT_EQ(hash_of(1), hash_of(999));
}

TEST(TracedParallelSortTest, TracedRunStillSortsAndCounts) {
  const size_t n = 9000;
  memtrace::HashTraceSink sink;
  memtrace::TraceScope scope(&sink);
  memtrace::OArray<Item> arr(n, "arr");
  crypto::ChaCha20Rng rng(7);
  for (size_t i = 0; i < n; ++i) arr.Write(i, Item{rng(), i});
  uint64_t comparisons = 0;
  BitonicSortParallel(arr, ItemLess{}, 4, &comparisons);
  const auto keys = Keys(arr);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(comparisons, BitonicComparisonCount(n));
}

TEST(ParallelSortTest, CountsComparisonsUntraced) {
  const size_t n = 20000;
  memtrace::OArray<Item> arr(n, "cnt");
  crypto::ChaCha20Rng rng(11);
  for (size_t i = 0; i < n; ++i) arr.Write(i, Item{rng(), i});
  uint64_t comparisons = 0;
  BitonicSortParallel(arr, ItemLess{}, 4, &comparisons);
  EXPECT_EQ(comparisons, BitonicComparisonCount(n));
}

}  // namespace
}  // namespace oblivdb::obliv
