#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/augment.h"
#include "core/comparators.h"
#include "memtrace/oarray.h"
#include "obliv/bitonic_sort.h"
#include "workload/generators.h"

namespace oblivdb::core {
namespace {

// The paper's running example (Figures 1 and 2):
//   T1 = x:a1, x:a2, y:b1..b4          (b's: 4 entries in the figure text)
//   T2 = x:u1..u3, y:v1, v2, z:w1
// Figure 2 uses y with 4 T1-entries; we encode d values as integers.
Table Figure2T1() {
  return Table("T1", {{10, 1}, {10, 2},            // x: a1 a2
                      {20, 1}, {20, 2}, {20, 3}, {20, 4}});  // y: b1..b4
}
Table Figure2T2() {
  return Table("T2", {{10, 1}, {10, 2}, {10, 3},   // x: u1..u3
                      {20, 1}, {20, 2},            // y: v1 v2
                      {30, 1}});                   // z: w1
}

TEST(AugmentTest, Figure2GroupDimensions) {
  const AugmentResult r = AugmentTables(Figure2T1(), Figure2T2());
  // m = 2*3 + 4*2 + 0*1 = 14.
  EXPECT_EQ(r.output_size, 14u);
  ASSERT_EQ(r.t1.size(), 6u);
  ASSERT_EQ(r.t2.size(), 6u);

  // T1 sorted by (j, d): x entries first with (alpha1, alpha2) = (2, 3).
  for (size_t i = 0; i < 2; ++i) {
    const Entry e = r.t1.Read(i);
    EXPECT_EQ(e.join_key, 10u);
    EXPECT_EQ(e.alpha1, 2u);
    EXPECT_EQ(e.alpha2, 3u);
    EXPECT_EQ(e.tid, 1u);
  }
  for (size_t i = 2; i < 6; ++i) {
    const Entry e = r.t1.Read(i);
    EXPECT_EQ(e.join_key, 20u);
    EXPECT_EQ(e.alpha1, 4u);
    EXPECT_EQ(e.alpha2, 2u);
  }
  // T2: x group (1,..3) gets (2,3); y gets (4,2); z gets (0,1).
  for (size_t i = 0; i < 3; ++i) {
    const Entry e = r.t2.Read(i);
    EXPECT_EQ(e.join_key, 10u);
    EXPECT_EQ(e.alpha1, 2u);
    EXPECT_EQ(e.alpha2, 3u);
    EXPECT_EQ(e.tid, 2u);
  }
  for (size_t i = 3; i < 5; ++i) {
    const Entry e = r.t2.Read(i);
    EXPECT_EQ(e.alpha1, 4u);
    EXPECT_EQ(e.alpha2, 2u);
  }
  const Entry z = r.t2.Read(5);
  EXPECT_EQ(z.join_key, 30u);
  EXPECT_EQ(z.alpha1, 0u);
  EXPECT_EQ(z.alpha2, 1u);
}

TEST(AugmentTest, ResultTablesSortedByKeyThenData) {
  const AugmentResult r = AugmentTables(Figure2T1(), Figure2T2());
  for (size_t i = 1; i < r.t1.size(); ++i) {
    const Entry a = r.t1.Read(i - 1);
    const Entry b = r.t1.Read(i);
    EXPECT_TRUE(std::pair(a.join_key, a.payload0) <=
                std::pair(b.join_key, b.payload0));
  }
}

TEST(AugmentTest, EmptyTables) {
  EXPECT_EQ(AugmentTables(Table("a"), Table("b")).output_size, 0u);
  EXPECT_EQ(AugmentTables(Table("a", {{1, 1}}), Table("b")).output_size, 0u);
  EXPECT_EQ(AugmentTables(Table("a"), Table("b", {{1, 1}})).output_size, 0u);
}

TEST(AugmentTest, DisjointKeysGiveZero) {
  const Table t1("T1", {{1, 1}, {2, 2}});
  const Table t2("T2", {{3, 3}, {4, 4}});
  const AugmentResult r = AugmentTables(t1, t2);
  EXPECT_EQ(r.output_size, 0u);
  // Every entry must have one alpha equal to zero.
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(r.t1.Read(i).alpha2, 0u);
    EXPECT_EQ(r.t2.Read(i).alpha1, 0u);
  }
}

TEST(AugmentTest, DuplicateDataValuesCounted) {
  // Exact duplicates (j, d) are distinct rows and must both count.
  const Table t1("T1", {{5, 7}, {5, 7}});
  const Table t2("T2", {{5, 9}});
  const AugmentResult r = AugmentTables(t1, t2);
  EXPECT_EQ(r.output_size, 2u);
  EXPECT_EQ(r.t1.Read(0).alpha1, 2u);
}

TEST(AugmentTest, OutputSizeMatchesGeneratorAcrossSuite) {
  for (const auto& tc : workload::GenerateTestSuite(64, /*seed=*/3)) {
    EXPECT_EQ(AugmentTables(tc.t1, tc.t2).output_size, tc.expected_m)
        << tc.name;
  }
}

TEST(FillDimensionsTest, DirectOnPresortedArray) {
  // Hand-built TC sorted by (j, tid): groups j=1 (1 t1, 2 t2) and j=2 (2 t1).
  memtrace::OArray<Entry> tc(5, "tc");
  tc.Write(0, MakeEntry(Record{1, {11, 0}}, 1));
  tc.Write(1, MakeEntry(Record{1, {21, 0}}, 2));
  tc.Write(2, MakeEntry(Record{1, {22, 0}}, 2));
  tc.Write(3, MakeEntry(Record{2, {12, 0}}, 1));
  tc.Write(4, MakeEntry(Record{2, {13, 0}}, 1));
  EXPECT_EQ(FillDimensions(tc), 2u);  // 1*2 + 2*0
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(tc.Read(i).alpha1, 1u);
    EXPECT_EQ(tc.Read(i).alpha2, 2u);
  }
  for (size_t i = 3; i < 5; ++i) {
    EXPECT_EQ(tc.Read(i).alpha1, 2u);
    EXPECT_EQ(tc.Read(i).alpha2, 0u);
  }
}

TEST(FillDimensionsTest, EmptyArray) {
  memtrace::OArray<Entry> tc(0, "tc");
  EXPECT_EQ(FillDimensions(tc), 0u);
}

TEST(FillDimensionsTest, ZeroJoinKeyGroupHandled) {
  // prev_key is initialized to 0; a real group with key 0 must still start
  // a fresh count at index 0.
  memtrace::OArray<Entry> tc(2, "tc");
  tc.Write(0, MakeEntry(Record{0, {1, 0}}, 1));
  tc.Write(1, MakeEntry(Record{0, {2, 0}}, 2));
  EXPECT_EQ(FillDimensions(tc), 1u);
  EXPECT_EQ(tc.Read(0).alpha1, 1u);
  EXPECT_EQ(tc.Read(0).alpha2, 1u);
}

}  // namespace
}  // namespace oblivdb::core
