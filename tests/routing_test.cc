#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "crypto/chacha20.h"
#include "memtrace/oarray.h"
#include "memtrace/sinks.h"
#include "obliv/routing.h"

namespace oblivdb::obliv {
namespace {

struct Slot {
  uint64_t value = 0;
  uint64_t dest = 0;  // 1-based; 0 = null
};
uint64_t GetRouteDest(const Slot& s) { return s.dest; }
void SetRouteDest(Slot& s, uint64_t d) { s.dest = d; }

// --- RouteForward (distribute direction) -----------------------------------

// Builds an array of size m whose prefix holds n elements with the given
// (sorted, injective) destinations.
memtrace::OArray<Slot> MakeForwardInput(const std::vector<uint64_t>& dests,
                                        size_t m) {
  memtrace::OArray<Slot> arr(m, "route");
  for (size_t i = 0; i < dests.size(); ++i) {
    arr.Write(i, Slot{1000 + i, dests[i]});
  }
  return arr;
}

void ExpectRouted(const memtrace::OArray<Slot>& arr,
                  const std::vector<uint64_t>& dests) {
  std::vector<bool> expected_filled(arr.size(), false);
  for (size_t i = 0; i < dests.size(); ++i) {
    const Slot s = arr.Read(dests[i] - 1);
    EXPECT_EQ(s.value, 1000 + i) << "element " << i;
    expected_filled[dests[i] - 1] = true;
  }
  for (size_t p = 0; p < arr.size(); ++p) {
    if (!expected_filled[p]) {
      EXPECT_EQ(arr.Read(p).dest, 0u) << "slot " << p << " should be null";
    }
  }
}

TEST(RouteForwardTest, PaperFigure3Example) {
  // n = 5, m = 8, destinations 1, 3, 4, 6, 8 (already sorted).
  auto arr = MakeForwardInput({1, 3, 4, 6, 8}, 8);
  RouteForward(arr);
  ExpectRouted(arr, {1, 3, 4, 6, 8});
}

TEST(RouteForwardTest, IdentityWhenAlreadyPlaced) {
  auto arr = MakeForwardInput({1, 2, 3}, 3);
  RouteForward(arr);
  ExpectRouted(arr, {1, 2, 3});
}

TEST(RouteForwardTest, SingleElementToEnd) {
  auto arr = MakeForwardInput({16}, 16);
  RouteForward(arr);
  ExpectRouted(arr, {16});
}

TEST(RouteForwardTest, EmptyAndTinyArrays) {
  memtrace::OArray<Slot> empty(0, "route");
  RouteForward(empty);  // no-op
  auto one = MakeForwardInput({1}, 1);
  RouteForward(one);
  ExpectRouted(one, {1});
}

class RouteForwardRandomTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RouteForwardRandomTest, RandomSubsetsRouteCorrectly) {
  const size_t m = GetParam();
  crypto::ChaCha20Rng rng(m * 17 + 1);
  for (int iter = 0; iter < 20; ++iter) {
    // Random subset of {1..m} of random size, as sorted destinations.
    std::vector<uint64_t> dests;
    for (uint64_t d = 1; d <= m; ++d) {
      if (rng.Uniform(3) == 0) dests.push_back(d);
    }
    auto arr = MakeForwardInput(dests, m);
    RouteForward(arr);
    ExpectRouted(arr, dests);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RouteForwardRandomTest,
                         ::testing::Values(2, 3, 5, 8, 13, 16, 31, 64, 100,
                                           257));

TEST(RouteForwardTest, StatsCountMatchesSchedule) {
  PrimitiveStats stats;
  auto arr = MakeForwardInput({1, 4}, 8);
  RouteForward(arr, &stats);
  // For m = 8: hops j = 4, 2, 1 touch (m - j) pairs each: 4 + 6 + 7 = 17.
  EXPECT_EQ(stats.route_ops, 17u);
}

TEST(RouteForwardTest, TraceDependsOnlyOnLength) {
  auto traced = [](const std::vector<uint64_t>& dests, size_t m) {
    memtrace::VectorTraceSink sink;
    memtrace::TraceScope scope(&sink);
    // Uniform setup: write every slot (element or explicit null) so the
    // loading pass itself is oblivious too.
    memtrace::OArray<Slot> arr(m, "route");
    for (size_t i = 0; i < m; ++i) {
      arr.Write(i, i < dests.size() ? Slot{1000 + i, dests[i]} : Slot{});
    }
    RouteForward(arr);
    return sink;
  };
  const auto a = traced({1, 3, 4, 6, 8}, 8);
  const auto b = traced({4, 5, 6, 7, 8}, 8);
  const auto c = traced({2}, 8);
  EXPECT_TRUE(a.SameTraceAs(b));
  EXPECT_TRUE(a.SameTraceAs(c));
}

// --- RouteToFront (compaction direction) ------------------------------------

// Elements scattered at `positions` with rank destinations 1, 2, ...
memtrace::OArray<Slot> MakeCompactInput(const std::vector<size_t>& positions,
                                        size_t n) {
  memtrace::OArray<Slot> arr(n, "compact");
  for (size_t r = 0; r < positions.size(); ++r) {
    arr.Write(positions[r], Slot{1000 + r, r + 1});
  }
  return arr;
}

TEST(RouteToFrontTest, GathersScatteredElements) {
  auto arr = MakeCompactInput({1, 4, 5, 7}, 8);
  RouteToFront(arr);
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(arr.Read(r).value, 1000 + r);
  }
  for (size_t p = 4; p < 8; ++p) {
    EXPECT_EQ(arr.Read(p).dest, 0u);
  }
}

TEST(RouteToFrontTest, RegressionDescendingHopsCollide) {
  // Exact pattern that breaks the naive "mirror of Algorithm 3" (descending
  // hop sizes): leftward distances 1, 2, 2, 3 make a bit-1 hop land on a
  // still-resident element unless bit-0 hops run first.
  auto arr = MakeCompactInput({1, 3, 4, 6}, 7);
  RouteToFront(arr);
  for (size_t r = 0; r < 4; ++r) {
    ASSERT_EQ(arr.Read(r).value, 1000 + r) << r;
  }
  for (size_t p = 4; p < 7; ++p) {
    EXPECT_EQ(arr.Read(p).dest, 0u);
  }
}

TEST(RouteToFrontTest, AlreadyCompactIsIdentity) {
  auto arr = MakeCompactInput({0, 1, 2}, 6);
  RouteToFront(arr);
  for (size_t r = 0; r < 3; ++r) EXPECT_EQ(arr.Read(r).value, 1000 + r);
}

TEST(RouteToFrontTest, SingleElementFromEnd) {
  auto arr = MakeCompactInput({15}, 16);
  RouteToFront(arr);
  EXPECT_EQ(arr.Read(0).value, 1000u);
}

class RouteToFrontRandomTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RouteToFrontRandomTest, RandomScattersCompactCorrectly) {
  const size_t n = GetParam();
  crypto::ChaCha20Rng rng(n * 13 + 5);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<size_t> positions;
    for (size_t p = 0; p < n; ++p) {
      if (rng.Uniform(3) == 0) positions.push_back(p);
    }
    auto arr = MakeCompactInput(positions, n);
    RouteToFront(arr);
    for (size_t r = 0; r < positions.size(); ++r) {
      ASSERT_EQ(arr.Read(r).value, 1000 + r) << "n=" << n << " iter=" << iter;
    }
    for (size_t p = positions.size(); p < n; ++p) {
      ASSERT_EQ(arr.Read(p).dest, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RouteToFrontRandomTest,
                         ::testing::Values(2, 3, 5, 8, 13, 16, 31, 64, 100,
                                           257));

TEST(RouteToFrontTest, TraceDependsOnlyOnLength) {
  auto traced = [](const std::vector<size_t>& positions, size_t n) {
    memtrace::VectorTraceSink sink;
    memtrace::TraceScope scope(&sink);
    // Uniform setup: one write per slot regardless of occupancy.
    memtrace::OArray<Slot> arr(n, "compact");
    std::vector<Slot> slots(n);
    for (size_t r = 0; r < positions.size(); ++r) {
      slots[positions[r]] = Slot{1000 + r, r + 1};
    }
    for (size_t p = 0; p < n; ++p) arr.Write(p, slots[p]);
    RouteToFront(arr);
    return sink;
  };
  const auto a = traced({0, 3, 9}, 10);
  const auto b = traced({7, 8, 9}, 10);
  const auto c = traced({}, 10);
  EXPECT_TRUE(a.SameTraceAs(b));
  EXPECT_TRUE(a.SameTraceAs(c));
}

// The blocked (raw-memory + cached-emitter) execution must emit exactly the
// event sequence the per-element reference loops define: per step, R i,
// R i+j, W i, W i+j, hops descending (forward) / ascending (to-front).
// This pins the schedule itself, not just data-independence.
TEST(RoutingTest, BlockedForwardEmitsReferenceSchedule) {
  const size_t n = 11;
  memtrace::VectorTraceSink sink;
  std::vector<memtrace::AccessEvent> expected;
  {
    memtrace::TraceScope scope(&sink);
    memtrace::OArray<Slot> arr(n, "route");
    for (size_t i = 0; i < n; ++i) arr.Write(i, Slot{});  // setup events
    expected = sink.events();
    const uint32_t id = arr.array_id();
    for (uint64_t j = CeilPow2(n) / 2; j >= 1; j /= 2) {
      for (size_t i = n - j; i-- > 0;) {
        using memtrace::AccessKind;
        const uint32_t es = sizeof(Slot);
        expected.push_back({AccessKind::kRead, id, i, es});
        expected.push_back({AccessKind::kRead, id, i + j, es});
        expected.push_back({AccessKind::kWrite, id, i, es});
        expected.push_back({AccessKind::kWrite, id, i + j, es});
      }
    }
    RouteForward(arr);
  }
  ASSERT_EQ(sink.events().size(), expected.size());
  for (size_t k = 0; k < expected.size(); ++k) {
    ASSERT_EQ(sink.events()[k].kind, expected[k].kind) << k;
    ASSERT_EQ(sink.events()[k].array_id, expected[k].array_id) << k;
    ASSERT_EQ(sink.events()[k].index, expected[k].index) << k;
  }
}

TEST(RoutingTest, BlockedToFrontEmitsReferenceSchedule) {
  const size_t n = 13;
  memtrace::VectorTraceSink sink;
  std::vector<memtrace::AccessEvent> expected;
  {
    memtrace::TraceScope scope(&sink);
    memtrace::OArray<Slot> arr(n, "compact");
    for (size_t i = 0; i < n; ++i) arr.Write(i, Slot{});
    expected = sink.events();
    const uint32_t id = arr.array_id();
    for (uint64_t j = 1; j < n; j *= 2) {
      for (size_t p = j; p < n; ++p) {
        using memtrace::AccessKind;
        const uint32_t es = sizeof(Slot);
        expected.push_back({AccessKind::kRead, id, p - j, es});
        expected.push_back({AccessKind::kRead, id, p, es});
        expected.push_back({AccessKind::kWrite, id, p - j, es});
        expected.push_back({AccessKind::kWrite, id, p, es});
      }
    }
    RouteToFront(arr);
  }
  ASSERT_EQ(sink.events().size(), expected.size());
  for (size_t k = 0; k < expected.size(); ++k) {
    ASSERT_EQ(sink.events()[k].kind, expected[k].kind) << k;
    ASSERT_EQ(sink.events()[k].index, expected[k].index) << k;
  }
}

// Larger-n determinism via hashed logs: same length, any data, same trace.
TEST(RoutingTest, BlockedSchedulesAreDataIndependentAtScale) {
  auto forward_hash = [](uint64_t seed) {
    memtrace::HashTraceSink sink;
    memtrace::TraceScope scope(&sink);
    const size_t m = 700;
    crypto::ChaCha20Rng rng(seed);
    memtrace::OArray<Slot> arr(m, "route");
    uint64_t dest = 0;
    size_t at = 0;
    for (size_t p = 0; p < m; ++p) {
      Slot s{};
      if (dest < m && rng.Uniform(2) == 0) {
        dest += 1 + rng.Uniform(3);
        if (dest <= m) s = Slot{at++, dest};
      }
      arr.Write(p, s);
    }
    RouteForward(arr);
    RouteToFront(arr);
    return sink.HexDigest();
  };
  EXPECT_EQ(forward_hash(12), forward_hash(999));
}

TEST(RoutingTest, ForwardAndFrontAreMirrors) {
  // Routing k elements forward from a compact prefix, then compacting the
  // result, restores the prefix.
  crypto::ChaCha20Rng rng(9);
  for (int iter = 0; iter < 30; ++iter) {
    const size_t m = 2 + rng.Uniform(60);
    std::vector<uint64_t> dests;
    for (uint64_t d = 1; d <= m; ++d) {
      if (rng.Uniform(2) == 0) dests.push_back(d);
    }
    auto arr = MakeForwardInput(dests, m);
    RouteForward(arr);
    // Reassign rank destinations and compact back.
    uint64_t rank = 0;
    for (size_t p = 0; p < m; ++p) {
      Slot s = arr.Read(p);
      if (s.dest != 0) s.dest = ++rank;
      arr.Write(p, s);
    }
    RouteToFront(arr);
    for (size_t r = 0; r < dests.size(); ++r) {
      ASSERT_EQ(arr.Read(r).value, 1000 + r);
    }
  }
}

}  // namespace
}  // namespace oblivdb::obliv
