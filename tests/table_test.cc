#include <gtest/gtest.h>

#include "obliv/ct.h"
#include "table/entry.h"
#include "table/record.h"
#include "table/table.h"

namespace oblivdb {
namespace {

TEST(RecordTest, OrderingIsLexicographic) {
  const Record a{1, {5, 0}};
  const Record b{1, {6, 0}};
  const Record c{2, {0, 0}};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (Record{1, {5, 0}}));
}

TEST(JoinedRecordTest, OrderingIsLexicographic) {
  const JoinedRecord a{1, {5, 0}, {1, 0}};
  const JoinedRecord b{1, {5, 0}, {2, 0}};
  const JoinedRecord c{1, {6, 0}, {0, 0}};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(EntryTest, MakeEntryRoundTrip) {
  const Record r{42, {7, 9}};
  const Entry e = MakeEntry(r, 2);
  EXPECT_EQ(e.join_key, 42u);
  EXPECT_EQ(e.payload0, 7u);
  EXPECT_EQ(e.payload1, 9u);
  EXPECT_EQ(e.tid, 2u);
  EXPECT_EQ(e.dest, 0u);
  EXPECT_EQ(EntryToRecord(e), r);
}

TEST(EntryTest, RoutingTraitReadsAndWritesDest) {
  Entry e;
  EXPECT_EQ(GetRouteDest(e), 0u);
  SetRouteDest(e, 17);
  EXPECT_EQ(GetRouteDest(e), 17u);
  EXPECT_EQ(e.dest, 17u);
}

TEST(EntryTest, IsWordAlignedForCondSwap) {
  static_assert(sizeof(Entry) % 8 == 0);
  static_assert(sizeof(JoinedEntry) % 8 == 0);
  Entry a = MakeEntry(Record{1, {2, 3}}, 1);
  Entry b = MakeEntry(Record{9, {8, 7}}, 2);
  ct::CondSwap(~uint64_t{0}, a, b);
  EXPECT_EQ(a.join_key, 9u);
  EXPECT_EQ(b.join_key, 1u);
}

TEST(JoinedEntryTest, ToJoinedRecord) {
  const JoinedEntry e{5, 1, 2, 3, 4, 0};
  const JoinedRecord r = ToJoinedRecord(e);
  EXPECT_EQ(r.key, 5u);
  EXPECT_EQ(r.payload1, (std::array<uint64_t, 2>{1, 2}));
  EXPECT_EQ(r.payload2, (std::array<uint64_t, 2>{3, 4}));
}

TEST(TableTest, InitializerListConstructor) {
  const Table t("T", {{1, 10}, {1, 11}, {2, 20}});
  EXPECT_EQ(t.name(), "T");
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.rows()[0].key, 1u);
  EXPECT_EQ(t.rows()[0].payload[0], 10u);
  EXPECT_EQ(t.rows()[2].key, 2u);
}

TEST(TableTest, AddAndEmpty) {
  Table t("T");
  EXPECT_TRUE(t.empty());
  t.Add(3, 30);
  t.Add(Record{4, {40, 41}});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.rows()[1].payload[1], 41u);
}

TEST(TableTest, HasUniqueKeys) {
  Table unique("u", {{1, 0}, {2, 0}, {3, 0}});
  EXPECT_TRUE(unique.HasUniqueKeys());
  Table dup("d", {{1, 0}, {2, 0}, {1, 5}});
  EXPECT_FALSE(dup.HasUniqueKeys());
  Table empty("e");
  EXPECT_TRUE(empty.HasUniqueKeys());
}

}  // namespace
}  // namespace oblivdb
