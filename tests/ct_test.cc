#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "crypto/chacha20.h"
#include "obliv/ct.h"

namespace oblivdb::ct {
namespace {

constexpr uint64_t kOnes = ~uint64_t{0};
constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();

// Edge values that exercise carries, borrows, and the sign bit of every
// formula.
const std::vector<uint64_t>& EdgeValues() {
  static const std::vector<uint64_t> values = {
      0,          1,          2,          3,
      63,         64,         65,         255,
      256,        0x7fffffffffffffffULL,   // MSB-1
      0x8000000000000000ULL,               // MSB
      0x8000000000000001ULL, kMax - 1,     kMax};
  return values;
}

TEST(CtTest, ToMask) {
  EXPECT_EQ(ToMask(true), kOnes);
  EXPECT_EQ(ToMask(false), 0u);
  EXPECT_TRUE(MaskToBool(ToMask(true)));
  EXPECT_FALSE(MaskToBool(ToMask(false)));
}

TEST(CtTest, SelectPicksByMask) {
  EXPECT_EQ(Select(kOnes, 5, 9), 5u);
  EXPECT_EQ(Select(0, 5, 9), 9u);
  EXPECT_EQ(Select(kOnes, kMax, 0), kMax);
  EXPECT_EQ(Select(0, kMax, 0), 0u);
}

TEST(CtTest, EqMaskOnEdgeValues) {
  for (uint64_t a : EdgeValues()) {
    for (uint64_t b : EdgeValues()) {
      EXPECT_EQ(EqMask(a, b), a == b ? kOnes : 0u) << a << " vs " << b;
      EXPECT_EQ(NeqMask(a, b), a != b ? kOnes : 0u) << a << " vs " << b;
    }
  }
}

TEST(CtTest, OrderingMasksOnEdgeValues) {
  for (uint64_t a : EdgeValues()) {
    for (uint64_t b : EdgeValues()) {
      EXPECT_EQ(LessMask(a, b), a < b ? kOnes : 0u) << a << " < " << b;
      EXPECT_EQ(GreaterMask(a, b), a > b ? kOnes : 0u) << a << " > " << b;
      EXPECT_EQ(LeqMask(a, b), a <= b ? kOnes : 0u) << a << " <= " << b;
      EXPECT_EQ(GeqMask(a, b), a >= b ? kOnes : 0u) << a << " >= " << b;
    }
  }
}

TEST(CtTest, OrderingMasksRandomized) {
  crypto::ChaCha20Rng rng(2024);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t a = rng();
    const uint64_t b = rng();
    ASSERT_EQ(LessMask(a, b), a < b ? kOnes : 0u);
    ASSERT_EQ(EqMask(a, b), a == b ? kOnes : 0u);
  }
  // Near-collisions: differing only in low bits.
  for (int i = 0; i < 20000; ++i) {
    const uint64_t a = rng();
    const uint64_t b = a + (rng() & 3) - 1;  // a-1, a, a+1, a+2
    ASSERT_EQ(LessMask(a, b), a < b ? kOnes : 0u);
    ASSERT_EQ(GeqMask(a, b), a >= b ? kOnes : 0u);
  }
}

TEST(CtTest, MaskToBit) {
  EXPECT_EQ(MaskToBit(kOnes), 1u);
  EXPECT_EQ(MaskToBit(0), 0u);
}

struct Wide {
  uint64_t w[5];
  friend bool operator==(const Wide&, const Wide&) = default;
};

TEST(CtTest, CondSwapSwapsWhenMaskSet) {
  Wide a{{1, 2, 3, 4, 5}};
  Wide b{{9, 8, 7, 6, 5}};
  const Wide a0 = a, b0 = b;
  CondSwap(kOnes, a, b);
  EXPECT_EQ(a, b0);
  EXPECT_EQ(b, a0);
  CondSwap(uint64_t{0}, a, b);
  EXPECT_EQ(a, b0);  // unchanged
  EXPECT_EQ(b, a0);
}

TEST(CtTest, CondSwapSelfInverse) {
  crypto::ChaCha20Rng rng(77);
  for (int i = 0; i < 100; ++i) {
    Wide a{{rng(), rng(), rng(), rng(), rng()}};
    Wide b{{rng(), rng(), rng(), rng(), rng()}};
    const Wide a0 = a, b0 = b;
    CondSwap(kOnes, a, b);
    CondSwap(kOnes, a, b);
    EXPECT_EQ(a, a0);
    EXPECT_EQ(b, b0);
  }
}

TEST(CtTest, BlendSelectsWholeStruct) {
  Wide a{{1, 2, 3, 4, 5}};
  Wide b{{9, 8, 7, 6, 0}};
  EXPECT_EQ(Blend(kOnes, a, b), a);
  EXPECT_EQ(Blend(uint64_t{0}, a, b), b);
}

TEST(CtTest, SelectComposesLexicographically) {
  // The comparator pattern used across the pipeline: verify the composition
  // law lt = lt1 | (eq1 & lt2) against a reference on random pairs.
  crypto::ChaCha20Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t a1 = rng() & 7, a2 = rng();
    const uint64_t b1 = rng() & 7, b2 = rng();
    const uint64_t lt =
        LessMask(a1, b1) | (EqMask(a1, b1) & LessMask(a2, b2));
    const bool expected = std::pair(a1, a2) < std::pair(b1, b2);
    ASSERT_EQ(lt, expected ? kOnes : 0u);
  }
}

}  // namespace
}  // namespace oblivdb::ct
