#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "crypto/chacha20.h"
#include "memtrace/oarray.h"
#include "memtrace/sinks.h"
#include "obliv/bitonic_sort.h"
#include "obliv/ct.h"

namespace oblivdb::obliv {
namespace {

struct Item {
  uint64_t key = 0;
  uint64_t tag = 0;  // identifies the original row in stability-ish checks
};

struct ItemLess {
  uint64_t operator()(const Item& a, const Item& b) const {
    return ct::LessMask(a.key, b.key);
  }
};

struct ItemLexLess {
  uint64_t operator()(const Item& a, const Item& b) const {
    return ct::LessMask(a.key, b.key) |
           (ct::EqMask(a.key, b.key) & ct::LessMask(a.tag, b.tag));
  }
};

std::vector<uint64_t> Keys(const memtrace::OArray<Item>& arr) {
  std::vector<uint64_t> keys;
  for (size_t i = 0; i < arr.size(); ++i) keys.push_back(arr.Read(i).key);
  return keys;
}

// --- Correctness across sizes (including non-powers-of-two) ---------------

class BitonicSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BitonicSizeTest, SortsRandomInput) {
  const size_t n = GetParam();
  crypto::ChaCha20Rng rng(n * 31 + 7);
  memtrace::OArray<Item> arr(n, "sorttest");
  std::vector<uint64_t> reference;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t k = rng.Uniform(std::max<uint64_t>(1, n / 2 + 1));
    arr.Write(i, Item{k, i});
    reference.push_back(k);
  }
  BitonicSort(arr, ItemLess{});
  std::sort(reference.begin(), reference.end());
  EXPECT_EQ(Keys(arr), reference);
}

TEST_P(BitonicSizeTest, SortsReverseSortedInput) {
  const size_t n = GetParam();
  memtrace::OArray<Item> arr(n, "sorttest");
  for (size_t i = 0; i < n; ++i) arr.Write(i, Item{n - i, i});
  BitonicSort(arr, ItemLess{});
  std::vector<uint64_t> expect;
  for (size_t i = 1; i <= n; ++i) expect.push_back(i);
  EXPECT_EQ(Keys(arr), expect);
}

TEST_P(BitonicSizeTest, SortsAllEqualInput) {
  const size_t n = GetParam();
  memtrace::OArray<Item> arr(n, "sorttest");
  for (size_t i = 0; i < n; ++i) arr.Write(i, Item{42, i});
  BitonicSort(arr, ItemLess{});
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(arr.Read(i).key, 42u);
}

TEST_P(BitonicSizeTest, ComparisonCountMatchesModel) {
  const size_t n = GetParam();
  memtrace::OArray<Item> arr(n, "sorttest");
  crypto::ChaCha20Rng rng(5);
  for (size_t i = 0; i < n; ++i) arr.Write(i, Item{rng(), i});
  uint64_t comparisons = 0;
  BitonicSort(arr, ItemLess{}, &comparisons);
  EXPECT_EQ(comparisons, BitonicComparisonCount(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitonicSizeTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15,
                                           16, 17, 31, 32, 33, 100, 127, 128,
                                           129, 255, 1000, 1024));

// --- Lexicographic / multi-key behaviour ----------------------------------

TEST(BitonicSortTest, LexicographicTieBreak) {
  memtrace::OArray<Item> arr(6, "lex");
  arr.Write(0, Item{2, 1});
  arr.Write(1, Item{1, 2});
  arr.Write(2, Item{2, 0});
  arr.Write(3, Item{1, 0});
  arr.Write(4, Item{1, 1});
  arr.Write(5, Item{0, 9});
  BitonicSort(arr, ItemLexLess{});
  std::vector<std::pair<uint64_t, uint64_t>> got;
  for (size_t i = 0; i < 6; ++i) {
    got.push_back({arr.Read(i).key, arr.Read(i).tag});
  }
  const std::vector<std::pair<uint64_t, uint64_t>> expect = {
      {0, 9}, {1, 0}, {1, 1}, {1, 2}, {2, 0}, {2, 1}};
  EXPECT_EQ(got, expect);
}

TEST(BitonicSortTest, SortRangeLeavesOutsideUntouched) {
  memtrace::OArray<Item> arr(8, "range");
  for (size_t i = 0; i < 8; ++i) arr.Write(i, Item{8 - i, i});
  BitonicSortRange(arr, 2, 4, ItemLess{});
  // Prefix and suffix untouched.
  EXPECT_EQ(arr.Read(0).key, 8u);
  EXPECT_EQ(arr.Read(1).key, 7u);
  EXPECT_EQ(arr.Read(6).key, 2u);
  EXPECT_EQ(arr.Read(7).key, 1u);
  // Middle sorted.
  EXPECT_EQ(Keys(arr), (std::vector<uint64_t>{8, 7, 3, 4, 5, 6, 2, 1}));
}

TEST(BitonicSortTest, PreservesMultiset) {
  crypto::ChaCha20Rng rng(404);
  memtrace::OArray<Item> arr(257, "multiset");
  std::vector<uint64_t> before;
  for (size_t i = 0; i < 257; ++i) {
    const uint64_t k = rng.Uniform(32);
    arr.Write(i, Item{k, i});
    before.push_back(k);
  }
  BitonicSort(arr, ItemLess{});
  std::vector<uint64_t> after = Keys(arr);
  std::sort(before.begin(), before.end());
  EXPECT_EQ(after, before);
}

// --- Obliviousness of the network itself -----------------------------------

TEST(BitonicSortTest, TraceDependsOnlyOnLength) {
  auto traced_run = [](const std::vector<uint64_t>& keys) {
    memtrace::VectorTraceSink sink;
    memtrace::TraceScope scope(&sink);
    memtrace::OArray<Item> arr(keys.size(), "trace");
    for (size_t i = 0; i < keys.size(); ++i) arr.Write(i, Item{keys[i], i});
    BitonicSort(arr, ItemLess{});
    return sink;
  };
  const auto a = traced_run({5, 1, 4, 2, 3, 0, 6});
  const auto b = traced_run({0, 0, 0, 0, 0, 0, 0});
  const auto c = traced_run({9, 9, 9, 1, 1, 1, 5});
  EXPECT_TRUE(a.SameTraceAs(b));
  EXPECT_TRUE(a.SameTraceAs(c));
  const auto d = traced_run({1, 2, 3, 4, 5, 6, 7, 8});  // different length
  EXPECT_FALSE(a.SameTraceAs(d));
}

TEST(BitonicSortTest, EveryCompareExchangeWritesBothSlots) {
  // The §3.5 requirement: even when elements are not swapped, both entries
  // are rewritten.  Reads and writes must come in balanced pairs.
  memtrace::VectorTraceSink sink;
  {
    memtrace::TraceScope scope(&sink);
    memtrace::OArray<Item> arr(33, "rw");
    for (size_t i = 0; i < 33; ++i) arr.Write(i, Item{i, i});  // pre-sorted
    BitonicSort(arr, ItemLess{});
  }
  uint64_t reads = 0, writes = 0;
  for (const auto& e : sink.events()) {
    if (e.kind == memtrace::AccessKind::kRead) {
      ++reads;
    } else {
      ++writes;
    }
  }
  // 33 initial writes, then 2 reads + 2 writes per compare-exchange.
  EXPECT_EQ(reads, 2 * BitonicComparisonCount(33));
  EXPECT_EQ(writes, 33 + 2 * BitonicComparisonCount(33));
}

TEST(BitonicSortTest, ComparisonCountApproximatesQuarterNLogSquared) {
  // Table 3 uses n (log2 n)^2 / 4 as the model; check we are within 2x for
  // power-of-two sizes (the bound is asymptotic).
  for (uint64_t n : {1u << 8, 1u << 10, 1u << 12}) {
    const double model = double(n) * std::log2(double(n)) *
                         std::log2(double(n)) / 4.0;
    const double actual = double(BitonicComparisonCount(n));
    EXPECT_GT(actual, model * 0.5) << n;
    EXPECT_LT(actual, model * 2.0) << n;
  }
}

}  // namespace
}  // namespace oblivdb::obliv
