#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/aggregate.h"
#include "core/join.h"
#include "core/operators.h"
#include "core/plan.h"
#include "typecheck/ast.h"
#include "typecheck/checker.h"
#include "typecheck/interpreter.h"
#include "typecheck/programs.h"
#include "typecheck/query.h"

namespace oblivdb::typecheck {
namespace {

constexpr Label L = Label::kLow;
constexpr Label H = Label::kHigh;

Environment SimpleEnv() {
  Environment env;
  env.variables = {{"n", L}, {"x", H}, {"y", H}, {"low", L}, {"c", H}};
  env.arrays = {{"A", H}, {"B", H}};
  return env;
}

// ---------------------------------------------------------------------------
// Label lattice.

TEST(LabelTest, JoinAndFlow) {
  EXPECT_EQ(JoinLabels(L, L), L);
  EXPECT_EQ(JoinLabels(L, H), H);
  EXPECT_EQ(JoinLabels(H, H), H);
  EXPECT_TRUE(FlowsTo(L, L));
  EXPECT_TRUE(FlowsTo(L, H));
  EXPECT_TRUE(FlowsTo(H, H));
  EXPECT_FALSE(FlowsTo(H, L));
}

// ---------------------------------------------------------------------------
// Expression / statement structural helpers.

TEST(ExprTest, StructuralEquality) {
  EXPECT_TRUE(ExprEquals(Add(Var("i"), Const(1)), Add(Var("i"), Const(1))));
  EXPECT_FALSE(ExprEquals(Add(Var("i"), Const(1)), Add(Var("i"), Const(2))));
  EXPECT_FALSE(ExprEquals(Add(Var("i"), Const(1)), Sub(Var("i"), Const(1))));
  EXPECT_FALSE(ExprEquals(Var("i"), Const(1)));
}

// ---------------------------------------------------------------------------
// Positive typing rules.

TEST(CheckerTest, ReadWriteWithPublicIndexTypes) {
  TypeChecker checker(SimpleEnv());
  const auto r = checker.Check(Seq({
      ArrayRead("x", "A", Const(3)),
      ArrayWrite("A", Const(3), Var("x")),
  }));
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(CheckerTest, LoopOverPublicBoundTypes) {
  TypeChecker checker(SimpleEnv());
  const auto r = checker.Check(
      For("i", Var("n"), ArrayRead("x", "A", Var("i"))));
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(TraceToString(r.trace), "repeat(i in 1..n, R(A, i))");
}

TEST(CheckerTest, BalancedBranchesType) {
  TypeChecker checker(SimpleEnv());
  const auto r = checker.Check(
      If(Var("c"), ArrayWrite("A", Const(1), Var("x")),
         ArrayWrite("A", Const(1), Var("y"))));
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(CheckerTest, LowToHighFlowAllowed) {
  TypeChecker checker(SimpleEnv());
  EXPECT_TRUE(checker.Check(Assign("x", Var("n"))).ok);
  EXPECT_TRUE(checker.Check(Assign("low", Var("n"))).ok);
  EXPECT_TRUE(checker.Check(Assign("x", Var("y"))).ok);
}

// ---------------------------------------------------------------------------
// Negative typing rules.

TEST(CheckerTest, RejectsHighIndexedRead) {
  TypeChecker checker(SimpleEnv());
  const auto r = checker.Check(ArrayRead("y", "B", Var("x")));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("indexed by high-security"), std::string::npos);
}

TEST(CheckerTest, RejectsHighIndexedWrite) {
  TypeChecker checker(SimpleEnv());
  EXPECT_FALSE(checker.Check(ArrayWrite("B", Var("x"), Const(0))).ok);
}

TEST(CheckerTest, RejectsHighToLowAssignment) {
  TypeChecker checker(SimpleEnv());
  const auto r = checker.Check(Assign("low", Var("x")));
  EXPECT_FALSE(r.ok);
}

TEST(CheckerTest, RejectsUnbalancedBranches) {
  TypeChecker checker(SimpleEnv());
  const auto r =
      checker.Check(If(Var("c"), ArrayWrite("A", Const(1), Var("x")), Skip()));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("different traces"), std::string::npos);
}

TEST(CheckerTest, RejectsBranchesWithDifferentIndices) {
  TypeChecker checker(SimpleEnv());
  const auto r = checker.Check(If(Var("c"),
                                  ArrayWrite("A", Const(1), Var("x")),
                                  ArrayWrite("A", Const(2), Var("x"))));
  EXPECT_FALSE(r.ok);
}

TEST(CheckerTest, RejectsSecretLoopBound) {
  TypeChecker checker(SimpleEnv());
  const auto r = checker.Check(For("i", Var("x"), Skip()));
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("loop bound"), std::string::npos);
}

TEST(CheckerTest, RejectsImplicitFlow) {
  TypeChecker checker(SimpleEnv());
  const auto r = checker.Check(
      If(Var("c"), Assign("low", Const(1)), Assign("low", Const(1))));
  EXPECT_FALSE(r.ok);
}

TEST(CheckerTest, RejectsUndeclaredNames) {
  TypeChecker checker(SimpleEnv());
  EXPECT_FALSE(checker.Check(Assign("nope", Const(1))).ok);
  EXPECT_FALSE(checker.Check(ArrayRead("x", "NOPE", Const(0))).ok);
  EXPECT_FALSE(checker.Check(Assign("x", Var("ghost"))).ok);
}

TEST(CheckerTest, LoopVariableIsScopedLow) {
  // The loop var may be used as an index inside, but referring to it after
  // the loop (if undeclared) fails.
  TypeChecker checker(SimpleEnv());
  EXPECT_TRUE(
      checker.Check(For("i", Var("n"), ArrayRead("x", "A", Var("i")))).ok);
  EXPECT_FALSE(checker.Check(Assign("x", Var("i"))).ok);
}

// ---------------------------------------------------------------------------
// The paper kernels type-check; the counterexamples do not.

TEST(ProgramsTest, RoutingNetworkTypes) {
  auto [program, env] = RoutingNetworkProgram();
  const auto r = TypeChecker(env).Check(program);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(ProgramsTest, FillDimensionsTypes) {
  auto [program, env] = FillDimensionsForwardProgram();
  EXPECT_TRUE(TypeChecker(env).Check(program).ok);
}

TEST(ProgramsTest, AlignIndexTypes) {
  auto [program, env] = AlignIndexProgram();
  EXPECT_TRUE(TypeChecker(env).Check(program).ok);
}

TEST(ProgramsTest, CounterexamplesRejected) {
  for (auto maker : {LeakyIndexProgram, LeakyBranchProgram,
                     SecretLoopBoundProgram, ImplicitFlowProgram}) {
    auto [program, env] = maker();
    EXPECT_FALSE(TypeChecker(env).Check(program).ok);
  }
}

// ---------------------------------------------------------------------------
// Interpreter semantics.

TEST(InterpreterTest, ArithmeticAndAssignment) {
  Interpreter interp({{"a", 7}, {"b", 3}, {"r", 0}}, {});
  interp.Run(Assign("r", Add(Mul(Var("a"), Var("b")), Const(1))));
  EXPECT_EQ(interp.GetVariable("r"), 22u);
}

TEST(InterpreterTest, DivisionByZeroIsTotal) {
  Interpreter interp({{"r", 0}}, {});
  interp.Run(Assign("r", Div(Const(5), Const(0))));
  EXPECT_EQ(interp.GetVariable("r"), 0u);
  interp.Run(Assign("r", Mod(Const(5), Const(0))));
  EXPECT_EQ(interp.GetVariable("r"), 0u);
}

TEST(InterpreterTest, LoopAndArrays) {
  // Sum A[1..4] into x.
  Interpreter interp({{"x", 0}, {"n", 4}},
                     {{"A", {0, 10, 20, 30, 40}}});
  interp.Run(Seq({
      Assign("x", Const(0)),
      For("i", Var("n"),
          Seq({ArrayRead("t", "A", Var("i")),
               Assign("x", Add(Var("x"), Var("t")))})),
  }));
  EXPECT_EQ(interp.GetVariable("x"), 100u);
  ASSERT_EQ(interp.trace().size(), 4u);
  EXPECT_EQ(interp.trace()[0], (ConcreteAccess{true, "A", 1}));
  EXPECT_EQ(interp.trace()[3], (ConcreteAccess{true, "A", 4}));
}

TEST(InterpreterTest, BranchesExecuteOneSide) {
  Interpreter interp({{"c", 1}, {"r", 0}}, {});
  interp.Run(If(Var("c"), Assign("r", Const(5)), Assign("r", Const(9))));
  EXPECT_EQ(interp.GetVariable("r"), 5u);
}

// ---------------------------------------------------------------------------
// End-to-end: a well-typed kernel, executed, is actually correct AND its
// concrete traces agree across secret inputs — the §6.1 claim in miniature.

std::vector<uint64_t> RunRoutingDsl(const std::vector<uint64_t>& values,
                                    const std::vector<uint64_t>& dests,
                                    uint64_t m, uint64_t k,
                                    std::vector<ConcreteAccess>* trace) {
  auto [program, env] = RoutingNetworkProgram();
  (void)env;
  std::vector<uint64_t> a(m + 1, 0), f(m + 1, 0);
  for (size_t i = 0; i < values.size(); ++i) {
    a[i + 1] = values[i];
    f[i + 1] = dests[i];
  }
  Interpreter interp({{"m", m}, {"k", k}}, {{"A", a}, {"F", f}});
  interp.Run(program);
  if (trace != nullptr) *trace = interp.trace();
  return interp.GetArray("A");
}

TEST(DslRoutingTest, MatchesFigure3AndTracesAgree) {
  // Destinations 1, 3, 4, 6, 8 (sorted), m = 8, k = 3.
  std::vector<ConcreteAccess> trace1, trace2;
  const auto a1 = RunRoutingDsl({101, 102, 103, 104, 105}, {1, 3, 4, 6, 8},
                                8, 3, &trace1);
  EXPECT_EQ(a1[1], 101u);
  EXPECT_EQ(a1[3], 102u);
  EXPECT_EQ(a1[4], 103u);
  EXPECT_EQ(a1[6], 104u);
  EXPECT_EQ(a1[8], 105u);

  // Different secret contents, same sizes -> identical concrete trace.
  const auto a2 =
      RunRoutingDsl({7, 8, 9, 10, 11}, {4, 5, 6, 7, 8}, 8, 3, &trace2);
  EXPECT_EQ(a2[4], 7u);
  EXPECT_EQ(a2[8], 11u);
  EXPECT_EQ(trace1, trace2);
}

TEST(DslFillDimensionsTest, ComputesRunningCounts) {
  auto [program, env] = FillDimensionsForwardProgram();
  (void)env;
  // Groups: j=5 (tids 1, 2, 2), j=9 (tid 1).  1-based arrays.
  Interpreter interp({{"n", 4}},
                     {{"J", {0, 5, 5, 5, 9}},
                      {"TID", {0, 1, 2, 2, 1}},
                      {"A1", {0, 0, 0, 0, 0}},
                      {"A2", {0, 0, 0, 0, 0}}});
  interp.Run(program);
  EXPECT_EQ(interp.GetArray("A1"), (std::vector<uint64_t>{0, 1, 1, 1, 1}));
  EXPECT_EQ(interp.GetArray("A2"), (std::vector<uint64_t>{0, 0, 1, 2, 0}));
}

TEST(DslAlignTest, ComputesInterleavingIndices) {
  auto [program, env] = AlignIndexProgram();
  (void)env;
  // One group, alpha1 = 2, alpha2 = 3, m = 6: ii = q/2 + (q%2)*3.
  Interpreter interp({{"m", 6}},
                     {{"J", {0, 4, 4, 4, 4, 4, 4}},
                      {"ALPHA1", {0, 2, 2, 2, 2, 2, 2}},
                      {"ALPHA2", {0, 3, 3, 3, 3, 3, 3}},
                      {"II", std::vector<uint64_t>(7, 0)}});
  interp.Run(program);
  EXPECT_EQ(interp.GetArray("II"),
            (std::vector<uint64_t>{0, 0, 3, 1, 4, 2, 5}));
}

// ---------------------------------------------------------------------------
// Relational query programs (query.h): checked, lowered to core plans and
// executed through the Executor — never by direct operator calls.

QueryCatalog DemoCatalog() {
  QueryCatalog catalog;
  catalog.tables["emp"] =
      Table("emp", {{1, 10}, {1, 11}, {2, 20}, {3, 30}});
  catalog.tables["dept"] = Table("dept", {{1, 100}, {2, 200}, {2, 201}});
  return catalog;
}

TEST(QueryCheckTest, AcceptsWellFormedQuery) {
  const auto q = QDistinct(QJoin(QScan("emp"), QScan("dept")));
  EXPECT_TRUE(CheckQuery(q, DemoCatalog()).ok);
}

TEST(QueryCheckTest, RejectsUnknownTable) {
  const auto q = QJoin(QScan("emp"), QScan("missing"));
  const QueryCheckResult r = CheckQuery(q, DemoCatalog());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("missing"), std::string::npos);
}

TEST(QueryCheckTest, RejectsNullChildAndMissingPredicate) {
  EXPECT_FALSE(CheckQuery(QDistinct(nullptr), DemoCatalog()).ok);
  EXPECT_FALSE(CheckQuery(QSelect(QScan("emp"), nullptr), DemoCatalog()).ok);
  EXPECT_FALSE(CheckQuery(QMultiwayJoin({}), DemoCatalog()).ok);
}

TEST(QueryInterpreterTest, RunsThroughPlanExecutor) {
  QueryInterpreter interp(DemoCatalog());
  const core::PlanResult r =
      interp.Run(QDistinct(QJoin(QScan("emp"), QScan("dept"))));

  const QueryCatalog catalog = DemoCatalog();
  const auto joined = core::ObliviousJoin(catalog.tables.at("emp"),
                                          catalog.tables.at("dept"));
  Table packed("join");
  for (const auto& row : joined) {
    packed.rows().push_back(
        Record{row.key, {row.payload1[0], row.payload2[0]}});
  }
  EXPECT_EQ(r.table.rows(), core::ObliviousDistinct(packed).rows());

  // The lowered plan and the per-node execution stats are exposed.
  ASSERT_NE(interp.last_plan(), nullptr);
  EXPECT_EQ(core::ExplainPlan(interp.last_plan()),
            "distinct\n  join\n    scan(emp)\n    scan(dept)\n");
  ASSERT_EQ(interp.last_node_stats().size(), 4u);
  EXPECT_GT(interp.last_node_stats()[2].stats.TotalComparisons(), 0u);
}

TEST(QueryInterpreterTest, AggregateRootKeepsWideRows) {
  QueryInterpreter interp(DemoCatalog());
  const core::PlanResult r =
      interp.Run(QAggregate(QScan("emp"), QScan("dept")));
  const QueryCatalog catalog = DemoCatalog();
  EXPECT_EQ(r.aggregate_rows,
            core::ObliviousJoinAggregate(catalog.tables.at("emp"),
                                         catalog.tables.at("dept")));
}

// A declared catalog order passes through lowering unchanged: the scan
// node carries it, order propagation sees it, and the Executor elides the
// downstream entry sort — same rows as the undeclared run.
TEST(QueryInterpreterTest, CatalogTableOrderLowersOntoScan) {
  QueryCatalog catalog = DemoCatalog();
  // "emp" is stored (j, d)-sorted (it is, in DemoCatalog).
  catalog.table_orders["emp"] = core::OrderSpec::ByKeyData();

  const auto q = QDistinct(QScan("emp"));
  const core::PlanPtr plan = LowerToPlan(q, catalog);
  EXPECT_EQ(core::ProducedOrder(plan->inputs[0]),
            core::OrderSpec::ByKeyData());

  core::ExecContext ctx;
  ctx.sort_elision = true;
  QueryInterpreter interp(catalog, ctx);
  const core::PlanResult r = interp.Run(q);
  EXPECT_EQ(interp.last_node_stats().back().stats.op_sorts_elided, 1u);

  QueryInterpreter plain(DemoCatalog());
  EXPECT_EQ(r.table.rows(), plain.Run(q).table.rows());
}

}  // namespace
}  // namespace oblivdb::typecheck
