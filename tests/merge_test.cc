// The oblivious run merge (obliv/merge.h) behind order-aware sort elision:
// correctness of the generalized bitonic merge over two pre-sorted runs at
// every split shape, byte-equality with the full-sort path for full-width
// comparators, and input-independence of the merge trace.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/bits.h"
#include "core/comparators.h"
#include "memtrace/sinks.h"
#include "obliv/merge.h"
#include "obliv/sort_block.h"
#include "table/entry.h"

namespace oblivdb {
namespace {

Entry RandomEntry(uint64_t& state, uint64_t key_range, uint64_t tid) {
  Entry e;
  e.join_key = SplitMix64(state) % key_range;
  e.payload0 = SplitMix64(state) % 32;  // small range: plenty of ties
  e.payload1 = SplitMix64(state) % 4;
  e.tid = tid;
  return e;
}

// Builds an array of two runs, each independently ascending under `less`
// (run 1 carries tid = 1, run 2 tid = 2 — the operators' load pattern).
template <typename Less>
memtrace::OArray<Entry> TwoSortedRuns(size_t n1, size_t n2,
                                      uint64_t key_range, uint64_t seed,
                                      const Less& less) {
  memtrace::OArray<Entry> a(n1 + n2, "runs");
  uint64_t state = seed;
  Entry* d = a.UntracedData();
  for (size_t i = 0; i < n1; ++i) d[i] = RandomEntry(state, key_range, 1);
  for (size_t i = 0; i < n2; ++i) {
    d[n1 + i] = RandomEntry(state, key_range, 2);
  }
  auto by_less = [&](const Entry& x, const Entry& y) {
    return less(x, y) != 0;
  };
  std::sort(d, d + n1, by_less);
  std::sort(d + n1, d + n1 + n2, by_less);
  return a;
}

std::vector<Entry> Snapshot(const memtrace::OArray<Entry>& a) {
  return std::vector<Entry>(a.UntracedData(), a.UntracedData() + a.size());
}

bool SameBytes(const std::vector<Entry>& x, const std::vector<Entry>& y) {
  return x.size() == y.size() &&
         (x.empty() ||
          std::memcmp(x.data(), y.data(), x.size() * sizeof(Entry)) == 0);
}

// The split shapes the elision paths produce: empty runs, singletons,
// powers of two, odd lengths, unbalanced pairs.
const std::pair<size_t, size_t> kSplits[] = {
    {0, 0},  {0, 1},  {1, 0},  {1, 1},   {2, 3},  {3, 2},   {7, 9},
    {8, 8},  {16, 5}, {5, 16}, {31, 33}, {64, 1}, {1, 64},  {40, 40},
    {97, 3}, {3, 97}, {128, 128}, {100, 77}};

// Full-width comparator: remaining ties are bytewise-identical entries, so
// the merged array must equal the fully sorted array byte for byte.
TEST(MergeRunsTest, MatchesFullSortByteForByte_FullWidthComparator) {
  const core::ByJoinKeyThenTidThenDataLess less;
  for (const auto& [n1, n2] : kSplits) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      memtrace::OArray<Entry> merged =
          TwoSortedRuns(n1, n2, /*key_range=*/8, seed, less);
      memtrace::OArray<Entry> sorted(n1 + n2, "ref");
      std::copy(merged.UntracedData(), merged.UntracedData() + n1 + n2,
                sorted.UntracedData());

      obliv::ObliviousMergeRuns(merged, 0, n1, n2, less);
      obliv::BitonicSortRangeBlocked(sorted, 0, n1 + n2, less);
      EXPECT_TRUE(SameBytes(Snapshot(merged), Snapshot(sorted)))
          << "n1=" << n1 << " n2=" << n2 << " seed=" << seed;
    }
  }
}

// Narrow (j, tid) comparator — the Augment / Aggregate entry order.  Ties
// may land differently than the full sort's, so assert the two invariants
// the callers actually need: ascending under the comparator, and the same
// multiset of entries.
TEST(MergeRunsTest, SortedAndPermutation_NarrowComparator) {
  const core::ByJoinKeyThenTidLess less;
  for (const auto& [n1, n2] : kSplits) {
    memtrace::OArray<Entry> a =
        TwoSortedRuns(n1, n2, /*key_range=*/5, /*seed=*/7, less);
    std::vector<Entry> before = Snapshot(a);

    obliv::ObliviousMergeRuns(a, 0, n1, n2, less);
    std::vector<Entry> after = Snapshot(a);

    for (size_t i = 0; i + 1 < after.size(); ++i) {
      EXPECT_EQ(less(after[i + 1], after[i]), 0u)
          << "descending pair at " << i << " (n1=" << n1 << " n2=" << n2
          << ")";
    }
    auto canon = [](std::vector<Entry>& v) {
      std::sort(v.begin(), v.end(), [](const Entry& x, const Entry& y) {
        return std::memcmp(&x, &y, sizeof(Entry)) < 0;
      });
    };
    canon(before);
    canon(after);
    EXPECT_TRUE(SameBytes(before, after)) << "n1=" << n1 << " n2=" << n2;
  }
}

// Offset form: merging a sub-range must leave the rest of the array alone.
TEST(MergeRunsTest, RespectsRangeBounds) {
  const core::ByJoinKeyThenTidLess less;
  constexpr size_t kLo = 5, kN1 = 9, kN2 = 12, kTail = 4;
  memtrace::OArray<Entry> a(kLo + kN1 + kN2 + kTail, "bounded");
  uint64_t state = 99;
  Entry* d = a.UntracedData();
  for (size_t i = 0; i < a.size(); ++i) d[i] = RandomEntry(state, 64, 1);
  auto by_less = [&](const Entry& x, const Entry& y) {
    return less(x, y) != 0;
  };
  std::sort(d + kLo, d + kLo + kN1, by_less);
  std::sort(d + kLo + kN1, d + kLo + kN1 + kN2, by_less);
  const std::vector<Entry> before = Snapshot(a);

  obliv::ObliviousMergeRuns(a, kLo, kN1, kN2, less);
  const std::vector<Entry> after = Snapshot(a);
  EXPECT_EQ(std::memcmp(before.data(), after.data(), kLo * sizeof(Entry)), 0);
  EXPECT_EQ(std::memcmp(before.data() + kLo + kN1 + kN2,
                        after.data() + kLo + kN1 + kN2,
                        kTail * sizeof(Entry)),
            0);
  for (size_t i = kLo; i + 1 < kLo + kN1 + kN2; ++i) {
    EXPECT_EQ(less(after[i + 1], after[i]), 0u);
  }
}

TEST(ReverseRangeTest, ReversesExactlyTheRange) {
  memtrace::OArray<Entry> a(7, "rev");
  for (size_t i = 0; i < 7; ++i) {
    Entry e;
    e.join_key = i;
    a.Write(i, e);
  }
  obliv::ReverseRange(a, 1, 5);
  const uint64_t expected[] = {0, 5, 4, 3, 2, 1, 6};
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(a.Read(i).join_key, expected[i]) << i;
  }
}

// The merge's access trace must be a function of (n1, n2) alone.
TEST(MergeRunsTest, TraceIsInputIndependent) {
  const core::ByJoinKeyThenTidThenDataLess less;
  auto trace_of = [&](uint64_t seed, uint64_t key_range) {
    memtrace::VectorTraceSink sink;
    {
      // Array construction inside the scope: array ids restart per scope,
      // keeping consecutive sessions comparable (memtrace/trace.h).
      memtrace::TraceScope scope(&sink);
      memtrace::OArray<Entry> a =
          TwoSortedRuns(24, 17, key_range, seed, less);
      obliv::ObliviousMergeRuns(a, 0, 24, 17, less);
    }
    return sink;
  };
  const memtrace::VectorTraceSink first = trace_of(1, 4);
  EXPECT_GT(first.events().size(), 0u);
  EXPECT_TRUE(trace_of(2, 16).SameTraceAs(first));
  EXPECT_TRUE(trace_of(3, 1).SameTraceAs(first));
}

}  // namespace
}  // namespace oblivdb
